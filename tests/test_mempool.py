"""Tests for the mempool and the Nagle-style proposal rate control."""

import pytest

from repro.core.block import Transaction
from repro.core.mempool import Mempool


def tx(tx_id, size=100, origin=0):
    return Transaction(tx_id=tx_id, origin=origin, created_at=0.0, size=size)


class TestSubmission:
    def test_byte_and_count_accounting(self):
        pool = Mempool()
        pool.submit(tx(1, 100))
        pool.submit_many([tx(2, 50), tx(3, 25)])
        assert pool.pending_count == 3
        assert pool.pending_bytes == 175
        assert pool.total_submitted == 3

    def test_requeue_front_preserves_order(self):
        pool = Mempool()
        pool.submit(tx(3))
        pool.requeue_front([tx(1), tx(2)])
        batch = pool.take_batch(10_000, now=0.0)
        assert [t.tx_id for t in batch] == [1, 2, 3]


class TestNagleRule:
    def test_ready_when_enough_bytes(self):
        pool = Mempool(nagle_delay=10.0, nagle_size=150)
        pool.take_batch(10_000, now=0.0)  # sets the last-proposal clock
        pool.submit(tx(1, 200))
        assert pool.ready_to_propose(now=0.001)

    def test_not_ready_before_delay_with_few_bytes(self):
        pool = Mempool(nagle_delay=0.1, nagle_size=150_000)
        pool.take_batch(10_000, now=0.0)
        pool.submit(tx(1, 10))
        assert not pool.ready_to_propose(now=0.05)
        assert pool.ready_to_propose(now=0.1)

    def test_time_until_ready(self):
        pool = Mempool(nagle_delay=0.1, nagle_size=150_000)
        pool.take_batch(10_000, now=1.0)
        assert pool.time_until_ready(now=1.04) == pytest.approx(0.06)
        pool.submit(tx(1, 200_000))
        assert pool.time_until_ready(now=1.04) == 0.0

    def test_initially_ready(self):
        pool = Mempool(nagle_delay=5.0, nagle_size=10**9)
        assert pool.ready_to_propose(now=0.0)


class TestTakeBatch:
    def test_respects_byte_budget(self):
        pool = Mempool()
        for i in range(5):
            pool.submit(tx(i, 100))
        # The batch never exceeds the byte budget (250 B fits two 100 B txs).
        batch = pool.take_batch(250, now=0.0)
        assert [t.tx_id for t in batch] == [0, 1]
        assert pool.pending_count == 3
        assert pool.pending_bytes == 300

    def test_single_oversized_transaction_is_taken(self):
        pool = Mempool()
        pool.submit(tx(1, 10_000))
        batch = pool.take_batch(100, now=0.0)
        assert len(batch) == 1

    def test_empty_pool(self):
        pool = Mempool()
        assert pool.take_batch(100, now=0.0) == []
        assert pool.last_proposal_time == 0.0

    def test_mark_proposal_without_taking(self):
        pool = Mempool(nagle_delay=0.5)
        pool.mark_proposal(now=2.0)
        assert not pool.ready_to_propose(now=2.1)
        assert pool.ready_to_propose(now=2.5)

    def test_total_proposed_counter(self):
        pool = Mempool()
        pool.submit_many([tx(i, 10) for i in range(4)])
        pool.take_batch(30, now=0.0)
        assert pool.total_proposed == 3
