"""The windowed execution engine: planning, hand-off, stitching, CLI.

The headline invariant — windowed summaries and telemetry byte-identical to
monolithic runs across scenarios and window counts — is pinned by the
hypothesis suite in ``test_windowed_properties.py``; this file covers the
engine's moving parts deterministically: boundary arithmetic, prefix-tree
planning (who leads, who forks, what disqualifies sharing), the fork refit,
parallel scheduling, telemetry stitching, and the CLI surface.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import NodeConfig
from repro.experiments.cli import main as cli_main
from repro.experiments.engine import sweep
from repro.experiments.options import ExecutionOptions
from repro.experiments.runner import WorkloadSpec
from repro.experiments.scenario import (
    BandwidthSpec,
    ScenarioSpec,
    TopologySpec,
    expand_grid,
)
from repro.experiments.windowed import (
    plan_windowed_points,
    prefix_key,
    window_boundaries,
)
from repro.trace.recorder import TelemetrySpec

MB = 1_000_000.0


def tiny_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="tiny",
        topology=TopologySpec(kind="uniform", num_nodes=4, delay=0.05),
        bandwidth=BandwidthSpec(kind="constant", rate=2 * MB),
        workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=600_000.0),
        node=NodeConfig(max_block_size=100_000),
        duration=3.0,
        warmup_fraction=0.0,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestWindowBoundaries:
    def test_last_boundary_is_exactly_the_duration(self):
        bounds = window_boundaries(2.5, 3)
        assert bounds[-1] == 2.5
        assert len(bounds) == 3
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_single_window_is_the_horizon(self):
        assert window_boundaries(4.0, 1) == (4.0,)

    @pytest.mark.parametrize("windows", [0, -1])
    def test_non_positive_window_count_raises(self, windows):
        with pytest.raises(ConfigurationError):
            window_boundaries(4.0, windows)

    def test_zero_duration_cannot_be_split(self):
        with pytest.raises(ConfigurationError, match="distinct windows"):
            window_boundaries(0.0, 2)


class TestPrefixPlanning:
    def test_warmup_only_grid_shares_one_leader(self):
        points = expand_grid(tiny_spec(), {"warmup": (0.0, 0.5, 1.0)})
        plans = plan_windowed_points(points, 2)
        assert [plan.leader for plan in plans] == [None, 0, 0]
        assert [plan.first_window for plan in plans] == [0, 1, 1]

    def test_warmup_only_grid_forks_at_the_deepest_boundary(self):
        # Warmup never touches the event stream, so the points agree on
        # every shareable boundary and fork into the final window only.
        points = expand_grid(tiny_spec(), {"warmup": (0.0, 0.5, 1.0)})
        plans = plan_windowed_points(points, 4)
        assert [plan.fork_window for plan in plans] == [0, 3, 3]

    def test_stop_after_grid_forks_at_mixed_depths(self):
        # duration 3.0, W=3 -> boundaries 1.0, 2.0.  A cut strictly past a
        # boundary is inert up to it: stop_after=None shares both windows
        # with the 2.5 leader, stop_after=1.5 only the first.
        points = expand_grid(
            tiny_spec(), {"workload.stop_after": (2.5, None, 1.5)}
        )
        plans = plan_windowed_points(points, 3)
        assert [plan.leader for plan in plans] == [None, 0, 0]
        assert [plan.fork_window for plan in plans] == [0, 2, 1]

    def test_seed_grid_never_shares(self):
        points = expand_grid(tiny_spec(), {"seed": (0, 1, 2)})
        plans = plan_windowed_points(points, 2)
        assert [plan.leader for plan in plans] == [None, None, None]

    def test_stop_after_shares_only_strictly_past_first_boundary(self):
        # duration 3.0, W=2 -> first boundary 1.5.  A cut at the boundary
        # itself already changes window 0 (boundary events run inside it),
        # so only cuts strictly after 1.5 (or None) may share.
        points = expand_grid(
            tiny_spec(), {"workload.stop_after": (2.0, None, 1.5, 1.0)}
        )
        plans = plan_windowed_points(points, 2)
        assert [plan.leader for plan in plans] == [None, 0, None, None]

    def test_single_window_plans_have_no_forks(self):
        points = expand_grid(tiny_spec(), {"warmup": (0.0, 1.0)})
        plans = plan_windowed_points(points, 1)
        assert [plan.leader for plan in plans] == [None, None]

    def test_prefix_key_neutralises_checkpoint_every(self):
        spec = tiny_spec()
        assert prefix_key(spec, 1.5) == prefix_key(
            replace(spec, checkpoint_every=0.5), 1.5
        )

    def test_prefix_key_keeps_crash_time_relevant(self):
        from repro.adversary.registry import AdversarySpec

        spec = tiny_spec()
        crashed = replace(
            spec, adversary=AdversarySpec(kind="crash-after", count=1, crash_time=2.0)
        )
        assert prefix_key(spec, 1.5) != prefix_key(crashed, 1.5)

    def test_analytic_scenarios_are_rejected(self):
        spec = ScenarioSpec(kind="vid-cost", name="vid")
        with pytest.raises(ConfigurationError, match="analytic"):
            plan_windowed_points([({}, spec)], 2)


class TestWindowedSweep:
    def test_serial_windowed_matches_monolithic(self):
        base = tiny_spec()
        grid = {"seed": (0, 1)}
        mono = sweep(base, grid, options=ExecutionOptions(parallel=False))
        windowed = sweep(
            base, grid, options=ExecutionOptions(parallel=False, windows=3)
        )
        assert windowed.windows == 3
        assert mono.windows is None
        assert windowed.summaries() == mono.summaries()

    def test_forked_windowed_matches_monolithic_in_parallel(self):
        base = tiny_spec()
        grid = {"warmup": (0.0, 0.5, 1.0)}
        mono = sweep(base, grid, options=ExecutionOptions(parallel=False))
        windowed = sweep(
            base, grid, options=ExecutionOptions(windows=2, workers=2)
        )
        assert windowed.summaries() == mono.summaries()

    def test_mixed_depth_forks_match_monolithic(self):
        # One leader forked at two different depths: its chain is cut after
        # both demanded boundaries and each follower continues as itself.
        base = tiny_spec()
        grid = {"workload.stop_after": (2.5, None, 1.5)}
        mono = sweep(base, grid, options=ExecutionOptions(parallel=False))
        windowed = sweep(
            base, grid, options=ExecutionOptions(parallel=False, windows=3)
        )
        assert windowed.summaries() == mono.summaries()

    def test_stitched_telemetry_is_byte_identical(self, tmp_path):
        mono_dir = tmp_path / "mono"
        win_dir = tmp_path / "win"
        grid = {"warmup": (0.0, 1.0)}
        mono = sweep(
            tiny_spec(telemetry=TelemetrySpec(enabled=True, interval=0.25,
                                              out_dir=str(mono_dir))),
            grid,
            options=ExecutionOptions(parallel=False),
        )
        windowed = sweep(
            tiny_spec(telemetry=TelemetrySpec(enabled=True, interval=0.25,
                                              out_dir=str(win_dir))),
            grid,
            options=ExecutionOptions(parallel=False, windows=3),
        )
        mono_paths = [Path(point.telemetry_path) for point in mono.points]
        win_paths = [Path(point.telemetry_path) for point in windowed.points]
        assert [p.name for p in mono_paths] == [p.name for p in win_paths]
        for mono_path, win_path in zip(mono_paths, win_paths):
            assert mono_path.read_bytes() == win_path.read_bytes()
            assert mono_path.stat().st_size > 0

    def test_window_dir_keeps_handoff_artifacts(self, tmp_path):
        work = tmp_path / "work"
        sweep(
            tiny_spec(),
            {"warmup": (0.0, 1.0)},
            options=ExecutionOptions(parallel=False, windows=2,
                                     window_dir=str(work)),
        )
        # One hand-off checkpoint for the shared window 0, none for finals.
        assert sorted(p.name for p in work.glob("*.ckpt")) == ["point0000-w0.ckpt"]

    def test_windows_and_resume_dir_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="resume_dir"):
            sweep(
                tiny_spec(),
                {"seed": (0,)},
                options=ExecutionOptions(windows=2, resume_dir=str(tmp_path)),
            )


class TestWindowedCli:
    def _spec_path(self, tmp_path) -> Path:
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(tiny_spec().to_dict()))
        return path

    def test_run_windows_json_matches_monolithic(self, tmp_path, capsys):
        path = self._spec_path(tmp_path)
        assert cli_main(["run", str(path), "--serial", "--json"]) == 0
        mono = json.loads(capsys.readouterr().out)
        assert (
            cli_main(["run", str(path), "--windows", "3", "--workers", "2",
                      "--json"])
            == 0
        )
        windowed = json.loads(capsys.readouterr().out)
        assert windowed["windows"] == 3
        assert mono["windows"] is None
        assert windowed["summaries"] == mono["summaries"]

    def test_windows_with_resume_dir_is_exit_2_one_liner(self, tmp_path, capsys):
        path = self._spec_path(tmp_path)
        code = cli_main(
            ["sweep", str(path), "--grid", "seed=0,1", "--windows", "2",
             "--resume-dir", str(tmp_path / "journal")]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: ")
        assert captured.err.count("\n") == 1
