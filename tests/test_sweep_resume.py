"""Crash-injection for the sweep resume journal: SIGKILL, resume, bit-identical.

A child process runs a three-point serial sweep with a resume journal; the
parent SIGKILLs it as soon as the first point's result file lands (so the
child dies mid-point), then reruns the sweep with the same journal and
asserts that (i) only the unfinished points re-execute — the journalled
files are reused byte-for-byte, not rewritten — and (ii) the final
:class:`SweepResult` is bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import repro
from repro.experiments.catalog import get_scenario
from repro.experiments.engine import sweep
from repro.experiments.options import ExecutionOptions

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])

SCENARIO = "straggler-hetero"
DURATION = 2.5
GRID = {"seed": (0, 1, 2)}

_CHILD_SCRIPT = f"""
import sys
from dataclasses import replace
from repro.experiments.catalog import get_scenario
from repro.experiments.engine import sweep
from repro.experiments.options import ExecutionOptions

base = replace(get_scenario({SCENARIO!r}).base, duration={DURATION!r})
sweep(base, {GRID!r}, options=ExecutionOptions(parallel=False, resume_dir=sys.argv[1]))
"""


def _base_spec():
    return replace(get_scenario(SCENARIO).base, duration=DURATION)


def test_sigkilled_sweep_resumes_only_unfinished_points(tmp_path):
    journal = tmp_path / "journal"
    env = {**os.environ, "PYTHONPATH": SRC_DIR}
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT, str(journal)], env=env
    )
    try:
        # Wait for the first completed point, then SIGKILL mid-next-point.
        deadline = time.monotonic() + 180
        first = journal / "point-0000.ckpt"
        while time.monotonic() < deadline:
            if first.exists() or child.poll() is not None:
                break
            time.sleep(0.02)
        assert first.exists(), "child never completed its first sweep point"
    finally:
        child.kill()
        child.wait()

    finished = sorted(journal.glob("point-*.ckpt"))
    finished_indices = [int(path.stem.split("-")[1]) for path in finished]
    assert finished_indices, "no journalled points survived the kill"
    assert len(finished_indices) < 3, "the sweep completed before the kill landed"
    before = {path.name: path.read_bytes() for path in finished}

    base = _base_spec()
    resumed = sweep(base, GRID, options=ExecutionOptions(parallel=False, resume_dir=str(journal)))
    assert resumed.resumed_points == finished_indices

    # The journalled results were reused verbatim; the missing ones now exist.
    for name, blob in before.items():
        assert (journal / name).read_bytes() == blob
    assert sorted(p.name for p in journal.glob("point-*.ckpt")) == [
        f"point-{i:04d}.ckpt" for i in range(3)
    ]

    clean = sweep(base, GRID, options=ExecutionOptions(parallel=False))
    assert json.dumps(resumed.summaries(), sort_keys=True) == json.dumps(
        clean.summaries(), sort_keys=True
    )
    assert resumed.events_processed == clean.events_processed
    assert resumed.tx_generated == clean.tx_generated
    assert resumed.tx_committed == clean.tx_committed


def test_stale_journal_from_a_different_sweep_is_ignored(tmp_path):
    """Changing the base spec invalidates every journalled point (fingerprints)."""
    journal = tmp_path / "journal"
    base = _base_spec()
    first = sweep(base, GRID, options=ExecutionOptions(parallel=False, resume_dir=str(journal)))
    assert first.resumed_points == []

    # Same journal, different sweep: nothing may be reused.
    other = replace(base, duration=DURATION + 0.5)
    resumed = sweep(other, GRID, options=ExecutionOptions(parallel=False, resume_dir=str(journal)))
    assert resumed.resumed_points == []

    # Rerunning the original sweep *after* the journal was overwritten by the
    # other sweep re-executes everything again rather than mixing results.
    again = sweep(base, GRID, options=ExecutionOptions(parallel=False, resume_dir=str(journal)))
    assert again.resumed_points == []
    assert json.dumps(again.summaries(), sort_keys=True) == json.dumps(
        first.summaries(), sort_keys=True
    )
