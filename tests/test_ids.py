"""Tests for protocol instance identifiers."""

from repro.common.ids import BAInstanceId, VIDInstanceId


class TestVIDInstanceId:
    def test_equality_and_hashing(self):
        a = VIDInstanceId(epoch=3, proposer=1)
        b = VIDInstanceId(epoch=3, proposer=1)
        c = VIDInstanceId(epoch=3, proposer=2)
        assert a == b
        assert a != c
        assert len({a, b, c}) == 2

    def test_ordering_by_epoch_then_proposer(self):
        ids = [
            VIDInstanceId(epoch=2, proposer=0),
            VIDInstanceId(epoch=1, proposer=3),
            VIDInstanceId(epoch=1, proposer=1),
        ]
        ordered = sorted(ids)
        assert ordered == [
            VIDInstanceId(epoch=1, proposer=1),
            VIDInstanceId(epoch=1, proposer=3),
            VIDInstanceId(epoch=2, proposer=0),
        ]

    def test_str(self):
        assert "e=5" in str(VIDInstanceId(epoch=5, proposer=2))


class TestBAInstanceId:
    def test_distinct_from_vid_id(self):
        vid = VIDInstanceId(epoch=1, proposer=0)
        ba = BAInstanceId(epoch=1, slot=0)
        assert vid != ba

    def test_usable_as_dict_key(self):
        table = {BAInstanceId(epoch=e, slot=s): e * 10 + s for e in range(3) for s in range(3)}
        assert table[BAInstanceId(epoch=2, slot=1)] == 21

    def test_str(self):
        assert "s=7" in str(BAInstanceId(epoch=1, slot=7))
