"""Tests for the columnar data plane: TxBatch, ColumnarMempool, analysis.

The property-based cross-checks against the object path live in
``tests/test_columnar_properties.py``; this module pins the concrete
behaviours — digest/wire byte-compatibility, slice/cut semantics, the
mempool registry, and the telemetry ``summarise`` reductions.
"""

import json

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, TraceError
from repro.core.block import Transaction
from repro.core.mempool import ColumnarMempool, Mempool, create_mempool
from repro.core.txbatch import TxBatch, pack_digest_material
from repro.metrics.stats import summarise, summarise_array
from repro.trace.analysis import summarise_node_samples, summarise_telemetry


def tx(tx_id, size=100, origin=0, created_at=0.0):
    return Transaction(tx_id=tx_id, origin=origin, created_at=created_at, size=size)


def batch(origin, *sizes, first_id=1, created_at=0.0):
    ids = np.arange(first_id, first_id + len(sizes), dtype=np.uint64)
    created = np.full(len(sizes), created_at, dtype=np.float64)
    return TxBatch(origin, ids, created, np.array(sizes, dtype=np.int64))


class TestTxBatch:
    def test_columns_are_read_only(self):
        b = batch(0, 100, 200)
        with pytest.raises(ValueError):
            b.sizes[0] = 1

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ValueError):
            TxBatch(
                0,
                np.arange(2, dtype=np.uint64),
                np.zeros(3),
                np.array([1, 2], dtype=np.int64),
            )

    def test_from_transactions_round_trip(self):
        txs = [tx(1, 100, origin=3), tx(2, 50, origin=3, created_at=1.5)]
        b = TxBatch.from_transactions(txs)
        assert b.origin == 3
        assert b.count == 2
        assert b.total_bytes == 150
        assert b.as_transactions() == txs

    def test_from_transactions_rejects_mixed_origins(self):
        with pytest.raises(ValueError, match="single origin"):
            TxBatch.from_transactions([tx(1, origin=0), tx(2, origin=1)])

    def test_digest_material_matches_object_path(self):
        txs = [tx(1, 100), tx(2**40, 7), tx(3, 2**31)]
        assert TxBatch.from_transactions(txs).digest_material() == pack_digest_material(txs)

    def test_serialize_headers_matches_struct_layout(self):
        import struct

        txs = [tx(5, 123, origin=2, created_at=1.25)]
        expected = struct.pack(">QIId", 5, 2, 123, 1.25)
        assert TxBatch.from_transactions(txs).serialize_headers() == expected

    def test_slice_is_zero_copy_and_byte_exact(self):
        b = batch(1, 10, 20, 30, 40)
        piece = b.slice(1, 3)
        assert piece.count == 2
        assert piece.total_bytes == 50
        assert piece.tx_ids.base is not None  # a view, not a copy
        assert b.slice(0, 4) is b  # full-range slice returns self

    def test_concat_rejects_mixed_origins(self):
        with pytest.raises(ValueError, match="origins"):
            TxBatch.concat([batch(0, 10), batch(1, 10)])

    def test_concat_of_empties_is_empty(self):
        assert TxBatch.concat([TxBatch.empty(0), TxBatch.empty(1)]).count == 0


class TestColumnarMempool:
    def test_registry_builds_both_kinds(self):
        assert isinstance(create_mempool("object"), Mempool)
        assert isinstance(create_mempool("columnar"), ColumnarMempool)
        with pytest.raises(ConfigurationError, match="unknown mempool kind"):
            create_mempool("vectorised")

    def test_accounting_across_batches(self):
        pool = ColumnarMempool()
        pool.submit_batch(batch(0, 100, 200))
        pool.submit(tx(7, 50))
        assert pool.pending_count == 3
        assert pool.pending_bytes == 350
        assert pool.total_submitted == 3

    def test_take_batch_cuts_inside_a_batch(self):
        pool = ColumnarMempool()
        pool.submit_batch(batch(0, 100, 100, 100, 100))
        taken = pool.take_batch(250, now=0.0)
        # Greedy cut: 100+100 fits, a third 100 would exceed 250.
        assert taken.count == 2
        assert pool.pending_count == 2
        # The remainder drains on the next call, across the head offset.
        rest = pool.take_batch(10_000, now=0.1)
        assert rest.count == 2
        assert pool.is_empty

    def test_oversized_head_transaction_is_still_taken(self):
        pool = ColumnarMempool()
        pool.submit_batch(batch(0, 5_000))
        taken = pool.take_batch(100, now=0.0)
        assert taken.count == 1
        assert pool.is_empty

    def test_requeue_front_preserves_fifo_order(self):
        pool = ColumnarMempool()
        pool.submit_batch(batch(0, 100, 100, first_id=3))
        head = pool.take_batch(100, now=0.0)  # drains id 3, head offset now 1
        pool.requeue_front(head)
        drained = pool.take_batch(10_000, now=0.1)
        assert list(drained.tx_ids) == [3, 4]

    def test_submit_many_splits_runs_by_origin(self):
        pool = ColumnarMempool()
        pool.submit_many([tx(1, origin=0), tx(2, origin=0), tx(3, origin=1)])
        assert pool.pending_count == 3
        first = pool.take_batch(200, now=0.0)
        assert first.origin == 0 and first.count == 2


class TestSummariseArray:
    def test_matches_scalar_summarise(self):
        values = [0.5, 1.0, 2.5, 4.0, 10.0, 0.1]
        scalar = summarise(values)
        columnar = summarise_array(np.array(values))
        assert columnar.count == scalar.count
        assert columnar.mean == pytest.approx(scalar.mean)
        for name in ("p5", "p50", "p95", "p99"):
            assert getattr(columnar, name) == pytest.approx(getattr(scalar, name))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarise_array(np.empty(0))


def sample(t, node=0, **overrides):
    row = {
        "kind": "sample",
        "t": t,
        "node": node,
        "egress_queue": 0,
        "ingress_queue": 0,
        "egress_util": 0.0,
        "ingress_util": 0.0,
    }
    row.update(overrides)
    return row


class TestTelemetryAnalysis:
    def test_time_weighted_queue_mean(self):
        # Queue 10 held for 1 s then 30 held for 3 s: mean = (10 + 90) / 4.
        rows = [
            sample(0.0, egress_queue=10),
            sample(1.0, egress_queue=30),
            sample(4.0, egress_queue=0),
        ]
        stats = summarise_node_samples(rows)
        assert stats["egress_queue"]["mean"] == pytest.approx(100.0 / 4.0)
        assert stats["egress_queue"]["max"] == 30.0

    def test_utilisation_weighted_by_preceding_interval(self):
        # Util rows describe the interval before them; the t=0 row has none.
        rows = [
            sample(0.0, egress_util=0.9),  # zero-length interval: no weight
            sample(1.0, egress_util=0.5),
            sample(3.0, egress_util=1.0),
        ]
        stats = summarise_node_samples(rows)
        assert stats["egress_util"]["mean"] == pytest.approx((0.5 + 2.0) / 3.0)

    def test_unsorted_samples_rejected(self):
        with pytest.raises(TraceError, match="not sorted"):
            summarise_node_samples([sample(1.0), sample(0.5)])

    def test_single_sample_reports_its_value_not_zero(self):
        """Regression: with one sample every gap weight is zero, and the mean
        used to report 0.0 for every field while max reported the value."""
        stats = summarise_node_samples([sample(2.0, egress_queue=42, ingress_util=0.75)])
        assert stats["egress_queue"]["mean"] == 42.0
        assert stats["egress_queue"]["max"] == 42.0
        assert stats["ingress_util"]["mean"] == pytest.approx(0.75)
        assert stats["samples"] == 1
        assert any("single sample" in warning for warning in stats["warnings"])

    def test_multi_sample_series_has_no_warning_field(self):
        stats = summarise_node_samples([sample(0.0), sample(1.0)])
        assert "warnings" not in stats

    def test_coincident_samples_fall_back_to_unweighted_mean(self):
        """All samples at one instant: no interval to weight, plain mean."""
        stats = summarise_node_samples(
            [sample(1.0, egress_queue=10), sample(1.0, egress_queue=30)]
        )
        assert stats["egress_queue"]["mean"] == pytest.approx(20.0)

    def test_cluster_aggregates_and_meta(self):
        rows = [
            {"kind": "meta", "t": 0.0, "num_nodes": 2, "interval": 1.0},
            sample(0.0, node=0, ingress_queue=4),
            sample(1.0, node=0, ingress_queue=4),
            sample(0.0, node=1, ingress_queue=8),
            sample(1.0, node=1, ingress_queue=8),
        ]
        summary = summarise_telemetry(rows)
        assert summary["num_nodes"] == 2
        assert summary["recorded_nodes"] == 2
        assert summary["interval"] == 1.0
        assert summary["cluster"]["ingress_queue"]["mean"] == pytest.approx(6.0)
        assert summary["cluster"]["ingress_queue"]["max"] == 8.0

    def test_no_samples_rejected(self):
        with pytest.raises(TraceError, match="no sample rows"):
            summarise_telemetry([{"kind": "meta", "t": 0.0}])


class TestSummariseCli:
    def write_jsonl(self, path, rows):
        path.write_text("".join(json.dumps(row) + "\n" for row in rows), encoding="utf-8")

    def run(self, *argv):
        import argparse

        from repro.trace.cli import add_trace_parser, run_trace_command

        parser = argparse.ArgumentParser()
        add_trace_parser(parser.add_subparsers(dest="command", required=True))
        return run_trace_command(parser.parse_args(["trace", *argv]))

    def test_table_and_json_output(self, tmp_path, capsys):
        target = tmp_path / "telemetry.jsonl"
        self.write_jsonl(target, [sample(0.0), sample(1.0, egress_queue=10)])
        assert self.run("summarise", str(target)) == 0
        out = capsys.readouterr().out
        assert "1 node(s)" in out and "cluster" in out
        assert self.run("summarise", str(target), "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nodes"][0]["samples"] == 2

    def test_missing_file_is_a_one_line_error(self, tmp_path, capsys):
        assert self.run("summarise", str(tmp_path / "nope.jsonl")) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_unknown_node_is_a_one_line_error(self, tmp_path, capsys):
        target = tmp_path / "telemetry.jsonl"
        self.write_jsonl(target, [sample(0.0)])
        assert self.run("summarise", str(target), "--node", "5") == 2
        assert "node 5" in capsys.readouterr().err
