"""Tests for the AVID-M verifiable information dispersal protocol.

These exercise the four properties of S3.1 (Termination, Agreement,
Availability, Correctness) on the instant router, including under message
reordering, crash faults and an equivocating (inconsistent-encoding)
disperser.
"""

import pytest

from repro.adversary.equivocator import send_inconsistent_dispersal
from repro.adversary.filters import drop_messages_from
from repro.common.ids import VIDInstanceId
from repro.common.params import ProtocolParams
from repro.sim.context import NodeContext
from repro.sim.instant import InstantNetwork
from repro.vid.avid_m import AvidMInstance
from repro.vid.codec import BAD_UPLOADER, RealCodec


class VidHarness:
    """N servers each hosting one AVID-M instance for the same instance id."""

    def __init__(self, n: int, seed: int | None = None, allowed_disperser: int | None = 0):
        self.params = ProtocolParams.for_n(n)
        self.network = InstantNetwork(n, seed=seed)
        self.codec = RealCodec(self.params)
        self.instance_id = VIDInstanceId(epoch=1, proposer=0)
        self.completed: list[int] = []
        self.instances: list[AvidMInstance] = []
        for node_id in range(n):
            ctx = NodeContext(node_id, self.network, self.network)
            instance = AvidMInstance(
                params=self.params,
                instance=self.instance_id,
                ctx=ctx,
                codec=self.codec,
                on_complete=lambda _id, node_id=node_id: self.completed.append(node_id),
                allowed_disperser=allowed_disperser,
            )
            self.network.attach(node_id, _Adapter(instance))
            self.instances.append(instance)

    def disperse(self, payload: bytes, from_node: int = 0) -> bytes:
        return self.instances[from_node].disperse(payload)

    def run(self):
        self.network.run()

    def retrieve_all(self):
        results = {}
        for node_id, instance in enumerate(self.instances):
            instance.retrieve(lambda res, node_id=node_id: results.__setitem__(node_id, res))
        self.network.run()
        return results


class _Adapter:
    def __init__(self, instance):
        self.instance = instance

    def start(self):
        return

    def on_message(self, src, msg):
        self.instance.handle(src, msg)


class TestTermination:
    @pytest.mark.parametrize("n", [4, 7, 10])
    def test_all_correct_servers_complete(self, n):
        harness = VidHarness(n)
        harness.disperse(b"hello dispersal")
        harness.run()
        assert sorted(harness.completed) == list(range(n))

    def test_completes_under_random_message_order(self):
        for seed in range(5):
            harness = VidHarness(7, seed=seed)
            harness.disperse(b"reordered")
            harness.run()
            assert len(harness.completed) == 7

    def test_completes_with_f_crashed_servers(self):
        harness = VidHarness(7)
        crashed = {5, 6}
        harness.network.delivery_filter = drop_messages_from(crashed)
        harness.disperse(b"with crashes")
        harness.run()
        completed_correct = set(harness.completed) - crashed
        assert completed_correct == {0, 1, 2, 3, 4}


class TestAgreementAndAvailability:
    def test_all_servers_agree_on_chunk_root(self):
        harness = VidHarness(7)
        root = harness.disperse(b"agree on me")
        harness.run()
        assert all(instance.chunk_root == root for instance in harness.instances)

    def test_retrieval_returns_dispersed_block(self):
        payload = b"the exact dispersed block" * 5
        harness = VidHarness(7)
        harness.disperse(payload)
        harness.run()
        results = harness.retrieve_all()
        assert len(results) == 7
        for result in results.values():
            assert result.ok
            assert result.payload == payload

    def test_retrieval_with_f_silent_servers(self):
        payload = b"still available"
        harness = VidHarness(7)
        harness.disperse(payload)
        harness.run()
        harness.network.delivery_filter = drop_messages_from({5, 6})
        results = {}
        for node_id in range(5):
            harness.instances[node_id].retrieve(
                lambda res, node_id=node_id: results.__setitem__(node_id, res)
            )
        harness.run()
        assert all(results[i].payload == payload for i in range(5))

    def test_retrieve_before_completion_is_answered_later(self):
        # A client that asks before servers have completed must still get the
        # block once dispersal finishes (servers defer, then answer).
        harness = VidHarness(4)
        results = {}
        harness.instances[3].retrieve(lambda res: results.__setitem__(3, res))
        harness.run()
        assert 3 not in results
        harness.disperse(b"late dispersal")
        harness.run()
        assert results[3].payload == b"late dispersal"

    def test_retrieve_twice_returns_same_payload(self):
        harness = VidHarness(4)
        harness.disperse(b"idempotent")
        harness.run()
        seen = []
        harness.instances[1].retrieve(lambda res: seen.append(res.payload))
        harness.run()
        harness.instances[1].retrieve(lambda res: seen.append(res.payload))
        harness.run()
        assert seen == [b"idempotent", b"idempotent"]


class TestCorrectness:
    def test_equivocating_disperser_yields_bad_uploader_everywhere(self):
        harness = VidHarness(7, allowed_disperser=0)
        ctx = NodeContext(0, harness.network, harness.network)
        send_inconsistent_dispersal(
            harness.params,
            ctx,
            harness.instance_id,
            b"a" * 700,
            b"z" * 700,
        )
        harness.run()
        # Dispersal still terminates (the chunks all verify against the root).
        assert len(harness.completed) == 7
        results = harness.retrieve_all()
        for result in results.values():
            assert not result.ok
            assert result.payload == BAD_UPLOADER

    def test_wrong_disperser_is_ignored(self):
        # A Byzantine node (2) tries to disperse into node 0's slot: servers
        # must drop its Chunk messages, so the dispersal never completes.
        harness = VidHarness(4, allowed_disperser=0)
        from repro.vid.messages import ChunkMsg

        bundle = harness.codec.encode(b"impostor")
        for server in range(4):
            harness.network.send(
                2,
                server,
                ChunkMsg(instance=harness.instance_id, root=bundle.root, chunk=bundle.chunks[server]),
            )
        harness.run()
        assert harness.completed == []

    def test_chunks_with_invalid_proofs_are_ignored(self):
        harness = VidHarness(4)
        codec = harness.codec
        bundle_a = codec.encode(b"real payload")
        bundle_b = codec.encode(b"other payload")
        from repro.vid.messages import ChunkMsg

        # Send chunks from bundle B claiming to belong to bundle A's root.
        for server in range(4):
            harness.network.send(
                0,
                server,
                ChunkMsg(
                    instance=harness.instance_id,
                    root=bundle_a.root,
                    chunk=bundle_b.chunks[server],
                ),
            )
        harness.run()
        assert harness.completed == []

    def test_duplicate_votes_do_not_double_count(self):
        harness = VidHarness(4)
        from repro.vid.messages import GotChunkMsg

        root = b"\x01" * 32
        # A single server repeating GotChunk must not push others to Ready.
        for _ in range(10):
            harness.network.send(3, 0, GotChunkMsg(instance=harness.instance_id, root=root))
        harness.run()
        assert not harness.instances[0]._sent_ready_roots


class TestDispersalRestrictions:
    def test_disperse_from_disallowed_node_raises(self):
        harness = VidHarness(4, allowed_disperser=1)
        with pytest.raises(Exception):
            harness.instances[0].disperse(b"not mine")

    def test_anyone_may_disperse_when_unrestricted(self):
        harness = VidHarness(4, allowed_disperser=None)
        harness.disperse(b"open slot", from_node=2)
        harness.run()
        assert len(harness.completed) == 4


class TestDisperseMany:
    def test_batch_of_one_matches_disperse(self):
        from repro.vid.avid_m import disperse_many

        harness_a = VidHarness(4)
        root_a = harness_a.disperse(b"batched payload")
        harness_a.run()

        harness_b = VidHarness(4)
        (root_b,) = disperse_many([harness_b.instances[0]], [b"batched payload"])
        harness_b.run()

        assert root_a == root_b
        assert sorted(harness_b.completed) == list(range(4))
        results = harness_b.retrieve_all()
        assert all(res.payload == b"batched payload" for res in results.values())

    def test_mismatched_lengths_raise(self):
        from repro.vid.avid_m import disperse_many

        harness = VidHarness(4)
        with pytest.raises(ValueError):
            disperse_many([harness.instances[0]], [b"a", b"b"])

    def test_empty_batch(self):
        from repro.vid.avid_m import disperse_many

        assert disperse_many([], []) == []

    def test_disallowed_disperser_raises_before_sending(self):
        from repro.common.errors import DispersalError
        from repro.vid.avid_m import disperse_many

        harness = VidHarness(4, allowed_disperser=1)
        with pytest.raises(DispersalError):
            disperse_many([harness.instances[0]], [b"not mine"])

    def test_falls_back_without_encode_many(self):
        from repro.vid.avid_m import disperse_many

        harness = VidHarness(4)

        class _NoBatchCodec:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                if name == "encode_many":
                    raise AttributeError(name)
                return getattr(self._inner, name)

        instance = harness.instances[0]
        instance.codec = _NoBatchCodec(harness.codec)
        (root,) = disperse_many([instance], [b"fallback path"])
        harness.run()
        assert sorted(harness.completed) == list(range(4))
        assert root == harness.codec.encode(b"fallback path").root
