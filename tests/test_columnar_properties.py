"""Property-based cross-checks: columnar data plane vs the object path.

Two families of properties pin the tentpole claim that the columnar plane
is a *behavioural twin* of the object plane, not an approximation:

* **Mempool equivalence** — for any run of submissions and drains, the
  columnar mempool's ``take_batch`` cuts at exactly the same transaction
  boundaries as the object mempool's, with identical accounting before and
  after.
* **Batched Poisson statistics** — the windowed order-statistics generator
  produces the same arrival process as the one-event-per-transaction
  generator: matching first moments over many windows, arrival times sorted
  and confined to their windows, and deterministic for a fixed seed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block import Transaction
from repro.core.mempool import ColumnarMempool, Mempool
from repro.core.txbatch import TxBatch
from repro.sim.events import Simulator
from repro.workload.txgen import (
    ColumnarPoissonTransactionGenerator,
    PoissonTransactionGenerator,
)


def make_txs(sizes, origin=0):
    return [
        Transaction(tx_id=i + 1, origin=origin, created_at=0.0, size=size)
        for i, size in enumerate(sizes)
    ]


# One mempool "program": interleaved submissions (runs of tx sizes) and
# drains (byte budgets).  Single-origin throughout — a TxBatch holds a run
# from one origin by construction.
steps = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.lists(st.integers(min_value=1, max_value=5_000), min_size=1, max_size=20),
        ),
        st.tuples(st.just("drain"), st.integers(min_value=1, max_value=20_000)),
    ),
    min_size=1,
    max_size=30,
)


@given(program=steps)
@settings(max_examples=60, deadline=None)
def test_columnar_mempool_cuts_match_object_mempool(program):
    """Any submit/drain interleaving: identical cut boundaries and accounting."""
    obj = Mempool()
    col = ColumnarMempool()
    next_id = 1
    now = 0.0
    for op, arg in program:
        if op == "submit":
            txs = [
                Transaction(tx_id=next_id + i, origin=0, created_at=now, size=size)
                for i, size in enumerate(arg)
            ]
            next_id += len(arg)
            obj.submit_many(txs)
            col.submit_batch(TxBatch.from_transactions(txs))
        else:
            now += 0.1
            taken_obj = obj.take_batch(arg, now=now)
            taken_col = col.take_batch(arg, now=now)
            assert [t.tx_id for t in taken_obj] == list(taken_col.tx_ids)
            assert sum(t.size for t in taken_obj) == taken_col.total_bytes
        assert obj.pending_count == col.pending_count
        assert obj.pending_bytes == col.pending_bytes
        assert obj.total_submitted == col.total_submitted
        assert obj.total_proposed == col.total_proposed


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=5_000), min_size=1, max_size=20),
    budget=st.integers(min_value=1, max_value=20_000),
)
@settings(max_examples=60, deadline=None)
def test_requeue_front_round_trips_identically(sizes, budget):
    """Drain, requeue the drained batch, drain fully: original FIFO order."""
    txs = make_txs(sizes)
    obj = Mempool()
    col = ColumnarMempool()
    obj.submit_many(txs)
    col.submit_batch(TxBatch.from_transactions(txs))
    obj.requeue_front(obj.take_batch(budget, now=0.0))
    col.requeue_front(col.take_batch(budget, now=0.0))
    drained_obj = obj.take_batch(10**9, now=0.1)
    drained_col = col.take_batch(10**9, now=0.1)
    assert [t.tx_id for t in drained_obj] == list(drained_col.tx_ids)
    assert [t.tx_id for t in drained_obj] == [t.tx_id for t in txs]


class _StubParams:
    def __init__(self, n):
        self.n = n


class _StubNode:
    """Collects submissions from both generator flavours."""

    def __init__(self, n=4, node_id=0):
        self.params = _StubParams(n)
        self.node_id = node_id
        self.txs = []
        self.batches = []

    def submit_transaction(self, tx):
        self.txs.append(tx)

    def submit_batch(self, batch):
        self.batches.append(batch)


def run_generators(rate, tx_size, duration, seed, window=0.25):
    """Drive the scalar and columnar Poisson generators over one horizon."""
    sim_a, node_a = Simulator(), _StubNode()
    PoissonTransactionGenerator(sim_a, node_a, rate, tx_size=tx_size, seed=seed).start()
    sim_a.run(until=duration)
    sim_b, node_b = Simulator(), _StubNode()
    ColumnarPoissonTransactionGenerator(
        sim_b, node_b, rate, tx_size=tx_size, seed=seed, window=window
    ).start()
    sim_b.run(until=duration)
    scalar_arrivals = np.array([tx.created_at for tx in node_a.txs])
    columnar_arrivals = np.concatenate(
        [batch.created_at for batch in node_b.batches]
    ) if node_b.batches else np.empty(0)
    return scalar_arrivals, columnar_arrivals


@given(
    rate_tx=st.floats(min_value=50.0, max_value=400.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=15, deadline=None)
def test_batched_poisson_matches_scalar_arrival_statistics(rate_tx, seed):
    """Same rate parameter: both processes hit the same mean to a CLT bound.

    Arrival counts over a horizon ``T`` are Poisson(``rate * T``); each
    generator's count must sit within 5 standard deviations of the mean
    (false-failure odds < 1e-5 per example), and so must the two counts'
    difference from each other (they are independent draws).
    """
    tx_size = 100
    duration = 8.0
    rate_bytes = rate_tx * tx_size
    scalar, columnar = run_generators(rate_bytes, tx_size, duration, seed)
    expected = rate_tx * duration
    bound = 5.0 * np.sqrt(expected)
    assert abs(len(scalar) - expected) < bound
    assert abs(len(columnar) - expected) < bound
    assert abs(len(scalar) - len(columnar)) < 2 * bound


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20, deadline=None)
def test_batched_arrivals_sorted_and_inside_their_windows(seed):
    """Per-batch arrival stamps are sorted and confined to the closed window."""
    window = 0.25
    sim, node = Simulator(), _StubNode()
    ColumnarPoissonTransactionGenerator(
        sim, node, 40_000.0, tx_size=100, seed=seed, window=window
    ).start()
    sim.run(until=3.0)
    assert node.batches, "expected at least one non-empty window at this rate"
    seen_ids = []
    for i, batch in enumerate(node.batches):
        arrivals = batch.created_at
        assert np.all(np.diff(arrivals) >= 0)
        # Every stamp predates the window close that submitted the batch.
        assert arrivals.max() <= sim.now
        assert arrivals.min() >= 0.0
        seen_ids.extend(batch.tx_ids)
    # Transaction ids are globally unique and strictly increasing.
    assert len(set(seen_ids)) == len(seen_ids)
    assert seen_ids == sorted(seen_ids)


def test_batched_poisson_is_deterministic_per_seed():
    scalar_a, columnar_a = run_generators(10_000.0, 100, 4.0, seed=7)
    _, columnar_b = run_generators(10_000.0, 100, 4.0, seed=7)
    np.testing.assert_array_equal(columnar_a, columnar_b)
    _, columnar_c = run_generators(10_000.0, 100, 4.0, seed=8)
    assert len(columnar_c) != len(columnar_b) or not np.array_equal(columnar_c, columnar_b)


def test_latency_stamps_are_exact_despite_batching():
    """Windowed submission must not quantise created_at onto the grid."""
    _, columnar = run_generators(20_000.0, 100, 4.0, seed=3)
    on_grid = np.isclose(columnar % 0.25, 0.0, atol=1e-12)
    assert not on_grid.all()
