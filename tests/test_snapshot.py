"""The ``repro-ckpt-v1`` checkpoint subsystem: format, mixin, timer, CLI.

Covers the snapshot envelope's typed error paths (truncated file, version
mismatch, corruption, foreign-scenario restore), the :class:`SnapshotState`
field-drift detection, the deferred-compaction guard in the event loop, the
periodic :class:`CheckpointTimer`, and the ``resume`` CLI's one-line exit-2
error convention.  The end-to-end bit-identical-continuation guarantees are
exercised in ``test_snapshot_properties.py`` and ``test_sweep_resume.py``.
"""

from __future__ import annotations

import json
import pickle
import zlib

import pytest

from repro.common.errors import ConfigurationError, SnapshotError
from repro.common.snapshot import SnapshotState
from repro.experiments.cli import main as cli_main
from repro.experiments.scenario import ScenarioSpec
from repro.sim.events import InternalCallback, Simulator
from repro.sim.snapshot import (
    FORMAT_VERSION,
    KIND_SIMULATION,
    CheckpointTimer,
    SimulationState,
    load_checkpoint,
    read_snapshot_file,
    read_snapshot_header,
    save_checkpoint,
    write_snapshot_file,
)


# ---------------------------------------------------------------------------
# SnapshotState mixin
# ---------------------------------------------------------------------------


class _Declared(SnapshotState):
    _SNAPSHOT_FIELDS = ("a", "b")

    def __init__(self):
        self.a = 1
        self.b = 2


class _Lazy(SnapshotState):
    _SNAPSHOT_FIELDS = ("x", "maybe")

    def __init__(self):
        self.x = 1  # ``maybe`` is only set on some code paths


class _Slotted(SnapshotState):
    __slots__ = ("u", "v")
    _SNAPSHOT_FIELDS = ("u", "v")

    def __init__(self):
        self.u = 10
        self.v = 20


class _SlottedDrift(SnapshotState):
    __slots__ = ("u", "undeclared")
    _SNAPSHOT_FIELDS = ("u",)

    def __init__(self):
        self.u = 10
        self.undeclared = 99


def test_snapshot_state_pickles_through_declared_fields():
    obj = _Declared()
    obj.b = 5
    clone = pickle.loads(pickle.dumps(obj))
    assert (clone.a, clone.b) == (1, 5)


def test_undeclared_dict_attribute_is_rejected():
    obj = _Declared()
    obj.c = 3
    with pytest.raises(SnapshotError, match="c"):
        obj.snapshot_state()


def test_undeclared_slot_is_rejected():
    with pytest.raises(SnapshotError, match="undeclared"):
        _SlottedDrift().snapshot_state()


def test_unknown_restore_key_is_rejected():
    with pytest.raises(SnapshotError, match="zz"):
        _Declared().restore_state({"a": 1, "zz": 2})


def test_absent_declared_field_stays_absent_after_restore():
    clone = pickle.loads(pickle.dumps(_Lazy()))
    assert clone.x == 1
    assert not hasattr(clone, "maybe")


def test_slotted_class_round_trips():
    clone = pickle.loads(pickle.dumps(_Slotted()))
    assert (clone.u, clone.v) == (10, 20)


# ---------------------------------------------------------------------------
# The repro-ckpt-v1 envelope
# ---------------------------------------------------------------------------


def _write(tmp_path, payload=("hello", 42), **kwargs):
    path = tmp_path / "x.ckpt"
    write_snapshot_file(
        path,
        payload,
        kind=kwargs.pop("kind", "simulation"),
        fingerprint=kwargs.pop("fingerprint", "cafe" * 4),
    )
    return path


def test_envelope_round_trip(tmp_path):
    path = _write(tmp_path)
    header, payload = read_snapshot_file(
        path, kind="simulation", expect_fingerprint="cafe" * 4
    )
    assert header["format"] == FORMAT_VERSION
    assert payload == ("hello", 42)


def test_truncated_payload_is_a_snapshot_error(tmp_path):
    path = _write(tmp_path)
    blob = path.read_bytes()
    path.write_bytes(blob[:-5])
    with pytest.raises(SnapshotError, match="truncated"):
        read_snapshot_file(path)
    # The header itself is intact, so header-only reads still work.
    assert read_snapshot_header(path)["format"] == FORMAT_VERSION


def test_corrupted_payload_is_a_snapshot_error(tmp_path):
    path = _write(tmp_path)
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(SnapshotError, match="checksum"):
        read_snapshot_file(path)


def test_version_mismatch_is_a_snapshot_error(tmp_path):
    path = _write(tmp_path)
    blob = path.read_bytes()
    newline = blob.find(b"\n")
    header = json.loads(blob[:newline])
    header["format"] = "repro-ckpt-v0"
    path.write_bytes(json.dumps(header).encode() + blob[newline:])
    with pytest.raises(SnapshotError, match="repro-ckpt-v0"):
        read_snapshot_header(path)


def test_headerless_file_is_a_snapshot_error(tmp_path):
    path = tmp_path / "bad.ckpt"
    path.write_bytes(b"not a checkpoint at all")
    with pytest.raises(SnapshotError, match="no header"):
        read_snapshot_header(path)
    path.write_bytes(b"not json\n" + b"tail")
    with pytest.raises(SnapshotError, match="unparseable"):
        read_snapshot_header(path)


def test_missing_file_is_a_snapshot_error(tmp_path):
    with pytest.raises(SnapshotError, match="cannot read"):
        read_snapshot_header(tmp_path / "absent.ckpt")


def test_wrong_kind_is_a_snapshot_error(tmp_path):
    path = _write(tmp_path, kind="sweep-point")
    with pytest.raises(SnapshotError, match="sweep-point"):
        read_snapshot_file(path, kind="simulation")


def test_foreign_fingerprint_is_a_snapshot_error(tmp_path):
    path = _write(tmp_path)
    with pytest.raises(SnapshotError, match="foreign-scenario"):
        read_snapshot_file(path, expect_fingerprint="beef" * 4)


def test_load_checkpoint_rejects_non_simulation_payload(tmp_path):
    path = _write(tmp_path, kind=KIND_SIMULATION)
    with pytest.raises(SnapshotError, match="SimulationState"):
        load_checkpoint(path)


# ---------------------------------------------------------------------------
# CheckpointTimer
# ---------------------------------------------------------------------------


def _bare_state(sim: Simulator) -> SimulationState:
    return SimulationState(
        fingerprint="f00d" * 4,
        protocol="dl",
        duration=10.0,
        warmup=0.0,
        seed=0,
        sim=sim,
        network=None,
        collector=None,
        nodes=[],
        generators=[],
    )


def test_checkpoint_timer_rejects_non_positive_interval(tmp_path):
    state = _bare_state(Simulator())
    with pytest.raises(SnapshotError, match="positive"):
        CheckpointTimer(state, tmp_path / "x.ckpt", 0.0)
    with pytest.raises(SnapshotError, match="positive"):
        CheckpointTimer(state, tmp_path / "x.ckpt", -1.0)


def test_checkpoint_timer_fires_periodically_and_is_uncounted(tmp_path):
    sim = Simulator()
    state = _bare_state(sim)
    path = tmp_path / "tick.ckpt"
    timer = CheckpointTimer(state, path, 2.5)
    timer.arm()
    sim.run(until=10.0)
    assert timer.checkpoints_written == 4  # t = 2.5, 5.0, 7.5, 10.0
    header = read_snapshot_header(path)
    assert header["virtual_time"] == 10.0
    # Internal callbacks never count as processed events.
    assert sim.processed_events == 0
    # The written checkpoint restores to an equivalent state.
    restored = load_checkpoint(path, expect_fingerprint="f00d" * 4)
    assert restored.sim.now == 10.0


# ---------------------------------------------------------------------------
# Deferred heap compaction (cancel storm inside an InternalCallback hand-off)
# ---------------------------------------------------------------------------


class _FireLog:
    """Picklable event sink: records which scheduled events actually ran."""

    def __init__(self):
        self.fired = []


class _Append:
    def __init__(self, log: _FireLog, index: int):
        self.log = log
        self.index = index

    def __call__(self):
        self.log.fired.append(self.index)


def test_compaction_is_deferred_during_internal_callback_handoff():
    """Regression: a cancel storm inside an ``InternalCallback`` must not
    compact (and thereby reorder/rewrite) the queue mid-hand-off.

    The hand-off cancels enough events to trip the compaction threshold and
    then snapshots the simulator: the snapshot must capture the queue with
    its lazily-deleted slots intact, the owed compaction must run only after
    the hand-off returns, and the snapshot must restore and continue to the
    exact same deliveries as the original run.
    """
    sim = Simulator()
    log = _FireLog()
    events = [sim.schedule_event(1.0 + i * 0.001, _Append(log, i)) for i in range(200)]

    observed = {}

    def hand_off():
        for event in events[:150]:
            event.cancel()
        observed["stale"] = sim._stale
        observed["deferred"] = sim._compact_deferred
        observed["queue_len"] = len(sim._queue)
        observed["snapshot"] = pickle.dumps(sim)

    sim.schedule_internal(0.5, InternalCallback(hand_off))
    sim.run(until=2.0)

    # During the hand-off: compaction owed but not executed.
    assert observed["deferred"] is True
    assert observed["stale"] == 150
    assert observed["queue_len"] == 200
    # After the hand-off returned: the owed compaction ran.
    assert sim._compact_deferred is False
    assert sim._stale == 0
    assert log.fired == list(range(150, 200))

    # The mid-hand-off snapshot continues bit-identically.
    clone = pickle.loads(observed["snapshot"])
    clone_log = None
    for _when, _seq, item in clone._queue:
        callback = getattr(item, "callback", None)
        if isinstance(callback, _Append):
            clone_log = callback.log
            break
    assert clone_log is not None
    clone.run(until=2.0)
    assert clone_log.fired == log.fired
    assert clone.now == sim.now
    assert clone.processed_events == sim.processed_events


# ---------------------------------------------------------------------------
# Scenario-spec field and CLI error conventions
# ---------------------------------------------------------------------------


def test_checkpoint_every_spec_field_validation():
    spec = ScenarioSpec(checkpoint_every=2.0)
    assert spec.checkpoint_every == 2.0
    with pytest.raises(ConfigurationError, match="positive"):
        ScenarioSpec(checkpoint_every=0.0)
    with pytest.raises(ConfigurationError, match="vid-cost"):
        ScenarioSpec(kind="vid-cost", checkpoint_every=1.0)


def test_checkpoint_every_round_trips_through_dict():
    spec = ScenarioSpec(checkpoint_every=1.5)
    assert ScenarioSpec.from_dict(spec.to_dict()).checkpoint_every == 1.5
    assert ScenarioSpec.from_dict(ScenarioSpec().to_dict()).checkpoint_every is None


def test_vid_cost_scenario_refuses_resume(tmp_path):
    from repro.experiments.engine import run_scenario
    from repro.experiments.options import ExecutionOptions

    spec = ScenarioSpec(kind="vid-cost", name="vid")
    with pytest.raises(SnapshotError, match="analytic"):
        run_scenario(
            spec, options=ExecutionOptions(resume_from=tmp_path / "whatever.ckpt")
        )


@pytest.mark.parametrize(
    "prepare, match",
    [
        (lambda p: None, "cannot read"),
        (lambda p: p.write_bytes(b"garbage without newline"), "no header"),
        (lambda p: p.write_bytes(b'{"format": "repro-ckpt-v0"}\npayload'), "repro-ckpt-v0"),
    ],
)
def test_resume_cli_reports_one_line_error_and_exit_2(tmp_path, capsys, prepare, match):
    path = tmp_path / "bad.ckpt"
    prepare(path)
    rc = cli_main(["resume", str(path)])
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.out == ""
    lines = [line for line in captured.err.splitlines() if line]
    assert len(lines) == 1
    assert lines[0].startswith("error: ")
    assert match.split()[0] in lines[0] or match in lines[0]


def test_resume_cli_truncated_checkpoint_exit_2(tmp_path, capsys):
    sim = Simulator()
    path = save_checkpoint(tmp_path / "t.ckpt", _bare_state(sim))
    blob = path.read_bytes()
    path.write_bytes(blob[:-10])
    rc = cli_main(["resume", str(path)])
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.err.startswith("error: ")
    assert "truncated" in captured.err
