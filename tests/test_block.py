"""Tests for transactions and blocks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block import BLOCK_OVERHEAD, TX_OVERHEAD, Block, Transaction


def make_tx(tx_id=1, origin=0, size=None, data=b"payload", created_at=1.5):
    return Transaction(
        tx_id=tx_id,
        origin=origin,
        created_at=created_at,
        size=len(data) if size is None else size,
        data=data,
    )


class TestTransaction:
    def test_size_must_match_data(self):
        with pytest.raises(ValueError):
            Transaction(tx_id=1, origin=0, created_at=0.0, size=3, data=b"toolong")

    def test_size_without_data_is_allowed(self):
        tx = Transaction(tx_id=1, origin=0, created_at=0.0, size=250)
        assert tx.size == 250
        assert tx.data == b""

    def test_frozen(self):
        tx = make_tx()
        with pytest.raises(Exception):
            tx.size = 1  # type: ignore[misc]


class TestBlockSizes:
    def test_empty_block(self):
        block = Block(proposer=1, epoch=2)
        assert block.is_empty
        assert block.payload_bytes == 0
        assert block.size == BLOCK_OVERHEAD

    def test_size_accounts_for_transactions_and_v_array(self):
        txs = (make_tx(1, data=b"abc"), make_tx(2, data=b"defgh"))
        block = Block(proposer=0, epoch=1, transactions=txs, v_array=(1, 2, 3, 4))
        assert block.payload_bytes == 8
        assert block.size == BLOCK_OVERHEAD + 4 * 8 + 2 * TX_OVERHEAD + 8

    def test_digest_changes_with_content(self):
        a = Block(proposer=0, epoch=1, transactions=(make_tx(1),))
        b = Block(proposer=0, epoch=1, transactions=(make_tx(2),))
        c = Block(proposer=0, epoch=2, transactions=(make_tx(1),))
        assert a.digest() != b.digest()
        assert a.digest() != c.digest()
        assert a.digest() == Block(proposer=0, epoch=1, transactions=(make_tx(1),)).digest()


class TestSerialization:
    def test_roundtrip(self):
        block = Block(
            proposer=3,
            epoch=7,
            transactions=(make_tx(10, origin=2, data=b"hello"), make_tx(11, data=b"")),
            v_array=(5, 0, 3, 9),
        )
        restored = Block.deserialize(block.serialize())
        assert restored.proposer == 3
        assert restored.epoch == 7
        assert restored.v_array == (5, 0, 3, 9)
        assert [tx.tx_id for tx in restored.transactions] == [10, 11]
        assert restored.transactions[0].data == b"hello"

    def test_roundtrip_empty(self):
        block = Block(proposer=0, epoch=1)
        assert Block.deserialize(block.serialize()).is_empty

    def test_transactions_without_data_roundtrip_by_size(self):
        block = Block(proposer=0, epoch=1, transactions=(make_tx(1, size=100, data=b""),))
        restored = Block.deserialize(block.serialize())
        assert restored.transactions[0].size == 100

    @pytest.mark.parametrize(
        "payload",
        [b"", b"\x00", b"garbage", b"\xff" * 11],
    )
    def test_malformed_payload_raises(self, payload):
        with pytest.raises(ValueError):
            Block.deserialize(payload)

    def test_truncated_payload_raises(self):
        good = Block(proposer=0, epoch=1, transactions=(make_tx(1, data=b"abcdef"),)).serialize()
        with pytest.raises(ValueError):
            Block.deserialize(good[:-3])

    def test_trailing_bytes_raise(self):
        good = Block(proposer=0, epoch=1).serialize()
        with pytest.raises(ValueError):
            Block.deserialize(good + b"\x00")

    @given(
        num_txs=st.integers(min_value=0, max_value=5),
        v_len=st.integers(min_value=0, max_value=8),
        data=st.binary(min_size=0, max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, num_txs, v_len, data):
        txs = tuple(make_tx(i, data=data) for i in range(num_txs))
        block = Block(proposer=1, epoch=2, transactions=txs, v_array=tuple(range(v_len)))
        restored = Block.deserialize(block.serialize())
        assert restored.v_array == tuple(range(v_len))
        assert len(restored.transactions) == num_txs
        assert all(tx.data == data for tx in restored.transactions)
        assert restored.size == block.size
