"""Trace replay through the scenario engine + per-run telemetry recording."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.adversary.registry import AdversarySpec
from repro.common.errors import ConfigurationError, TraceError
from repro.core.config import NodeConfig
from repro.experiments.catalog import get_scenario
from repro.experiments.cli import main as cli_main
from repro.experiments.engine import run_scenario, telemetry_filename
from repro.experiments.runner import WorkloadSpec
from repro.experiments.scenario import (
    BandwidthSpec,
    ScenarioSpec,
    TopologySpec,
    build_network_config,
)
from repro.trace import MeasuredTrace, TelemetrySpec, TraceRecorder, read_jsonl, save_trace

MB = 1_000_000


@pytest.fixture
def trace_file(tmp_path):
    """A 2-node measured trace on disk (cycled over larger clusters)."""
    trace = MeasuredTrace.from_node_rates(
        "tiny-wan",
        {
            0: [(0.0, 2 * MB, 2 * MB), (3.0, 1 * MB, 1 * MB)],
            1: [(0.0, 3 * MB, 3 * MB)],
        },
    )
    return str(save_trace(trace, tmp_path / "tiny-wan.csv"))


def replay_spec(trace_file, **overrides) -> ScenarioSpec:
    defaults = dict(
        name="tiny-replay",
        topology=TopologySpec(kind="uniform", num_nodes=4, delay=0.05),
        bandwidth=BandwidthSpec(kind="trace-replay", trace_path=trace_file),
        workload=WorkloadSpec(kind="saturating", target_pending_bytes=500_000),
        node=NodeConfig(max_block_size=100_000),
        duration=6.0,
        warmup_fraction=0.0,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestTraceReplayModel:
    def test_network_replays_the_file(self, trace_file):
        config = build_network_config(replay_spec(trace_file))
        # Node 0 replays trace node 0 (2 MB/s then 1 MB/s), node 1 trace
        # node 1, and nodes 2/3 cycle back around.
        assert config.ingress_trace(0).rate_at(0.0) == 2 * MB
        assert config.ingress_trace(0).rate_at(4.0) == 1 * MB
        assert config.ingress_trace(1).rate_at(0.0) == 3 * MB
        assert config.ingress_trace(2).rate_at(0.0) == 2 * MB
        assert config.ingress_trace(3).rate_at(0.0) == 3 * MB

    def test_trace_scale_applies(self, trace_file):
        spec = replay_spec(trace_file, bandwidth=BandwidthSpec(
            kind="trace-replay", trace_path=trace_file, trace_scale=0.5
        ))
        config = build_network_config(spec)
        assert config.ingress_trace(0).rate_at(0.0) == 1 * MB

    def test_spec_validation(self, trace_file):
        with pytest.raises(ConfigurationError, match="trace_path"):
            BandwidthSpec(kind="trace-replay")
        with pytest.raises(ConfigurationError, match="trace_scale"):
            BandwidthSpec(kind="trace-replay", trace_path=trace_file, trace_scale=0.0)

    def test_missing_trace_file_fails_at_build(self, trace_file):
        spec = replay_spec(trace_file, bandwidth=BandwidthSpec(
            kind="trace-replay", trace_path="absent/nowhere.csv"
        ))
        with pytest.raises(TraceError, match="not found"):
            build_network_config(spec)

    def test_spec_json_round_trip_with_trace_path(self, trace_file):
        spec = replay_spec(
            trace_file,
            bandwidth=BandwidthSpec(
                kind="trace-replay", trace_path=trace_file, trace_scale=2.0
            ),
            telemetry=TelemetrySpec(enabled=True, interval=0.5, out_dir="tm"),
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.bandwidth.trace_path == trace_file
        assert restored.bandwidth.trace_scale == 2.0
        assert restored.telemetry == TelemetrySpec(enabled=True, interval=0.5, out_dir="tm")

    def test_catalog_trace_scenarios_resolve(self):
        for name in ("trace-replay-wan", "trace-scale-sweep"):
            entry = get_scenario(name)
            assert entry.base.bandwidth.kind == "trace-replay"
            config = build_network_config(replace(entry.base, duration=1.0))
            assert config.num_nodes == entry.base.num_nodes


class TestTelemetrySpec:
    def test_defaults_are_off(self):
        assert ScenarioSpec().telemetry == TelemetrySpec()
        assert not TelemetrySpec().enabled

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TelemetrySpec(interval=0.0)
        with pytest.raises(ConfigurationError):
            TelemetrySpec(out_dir="")
        with pytest.raises(ConfigurationError):
            TraceRecorder(interval=-1.0)

    def test_telemetry_rejected_on_analytic_kinds(self):
        """vid-cost runs never build a simulator, so recording must fail loudly."""
        with pytest.raises(ConfigurationError, match="sim scenario"):
            ScenarioSpec(
                name="vid",
                kind="vid-cost",
                telemetry=TelemetrySpec(enabled=True),
            )
        # The CLI surfaces it as a clean exit-2 error, not a traceback.
        assert cli_main(["trace", "export", "fig02-vid-cost"]) == 2


class TestLinkSampling:
    def test_busy_time_accrues_for_in_flight_transfers(self):
        """Utilisation sampled mid-transfer must see the elapsed service time."""
        from repro.sim.bandwidth import ConstantBandwidth
        from repro.sim.events import Simulator
        from repro.sim.pipe import Pipe
        from repro.sim.messages import Priority

        sim = Simulator()
        pipe = Pipe(sim, ConstantBandwidth(1000.0))  # 10 s to move 10 kB
        pipe.submit(10_000, Priority.DISPERSAL, lambda: None)
        sim.run(until=4.0)
        assert pipe.busy_time == 0.0  # nothing completed yet
        assert pipe.busy_time_at(sim.now) == pytest.approx(4.0)
        assert pipe.in_flight_bytes == 10_000
        sim.run(until=11.0)
        assert pipe.busy_time == pytest.approx(10.0)
        assert pipe.busy_time_at(sim.now) == pytest.approx(10.0)
        assert pipe.in_flight_bytes == 0

    def test_sampled_utilisation_never_exceeds_one(self, trace_file, tmp_path):
        """Long transfers spanning intervals report util in [0, 1] throughout."""
        spec = replay_spec(
            trace_file,
            duration=5.0,
            node=NodeConfig(max_block_size=400_000),
            telemetry=TelemetrySpec(enabled=True, interval=0.5, out_dir=str(tmp_path)),
        )
        rows = read_jsonl(run_scenario(spec).telemetry_path)
        samples = [row for row in rows if row["kind"] == "sample"]
        assert samples
        for row in samples:
            assert -1e-9 <= row["egress_util"] <= 1.0 + 1e-9, row
            assert -1e-9 <= row["ingress_util"] <= 1.0 + 1e-9, row
        # The saturating workload keeps at least some link busy mid-run.
        assert any(row["egress_util"] > 0.5 for row in samples)


class TestRecorder:
    def test_summary_identical_with_telemetry_on_and_off(self, trace_file, tmp_path):
        spec = replay_spec(trace_file)
        off = run_scenario(spec)
        on = run_scenario(
            replace(
                spec,
                telemetry=TelemetrySpec(enabled=True, interval=0.5, out_dir=str(tmp_path)),
            )
        )
        assert off.summary() == on.summary()
        assert off.telemetry_path is None
        assert on.telemetry_path is not None

    def test_jsonl_rows_cover_the_run(self, trace_file, tmp_path):
        spec = replay_spec(
            trace_file,
            duration=4.0,
            telemetry=TelemetrySpec(enabled=True, interval=1.0, out_dir=str(tmp_path)),
        )
        outcome = run_scenario(spec)
        rows = read_jsonl(outcome.telemetry_path)
        kinds = {row["kind"] for row in rows}
        assert {"meta", "sample", "commit"} <= kinds
        meta = rows[0]
        assert meta["kind"] == "meta"
        assert meta["num_nodes"] == 4
        samples = [row for row in rows if row["kind"] == "sample"]
        # Samples on the grid t = 0, 1, 2, 3, 4 for each of the 4 nodes.
        assert len(samples) == 5 * 4
        assert {row["t"] for row in samples} == {0.0, 1.0, 2.0, 3.0, 4.0}
        for row in samples:
            assert row["egress_queue"] >= 0 and row["ingress_queue"] >= 0
            assert 0.0 <= row["egress_util"] <= 1.0 + 1e-9
            assert row["delivered_epoch"] >= 0
            assert row["confirmed_bytes"] >= 0
        commits = [row for row in rows if row["kind"] == "commit"]
        assert all(commit["latency"] >= 0 for commit in commits)
        assert all(commit["blocks"] >= 1 for commit in commits)
        # Every line is valid standalone JSON (the JSONL contract).
        with open(outcome.telemetry_path, encoding="utf-8") as handle:
            for line in handle:
                assert json.loads(line)["kind"] in {
                    "meta",
                    "sample",
                    "commit",
                    "adversary-delivery",
                }

    def test_adversary_rows_recorded(self, trace_file, tmp_path):
        spec = replay_spec(
            trace_file,
            duration=6.0,
            workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=300_000.0),
            adversary=AdversarySpec(kind="equivocate", count=1),
            telemetry=TelemetrySpec(enabled=True, interval=1.0, out_dir=str(tmp_path)),
        )
        rows = read_jsonl(run_scenario(spec).telemetry_path)
        deliveries = [row for row in rows if row["kind"] == "adversary-delivery"]
        assert deliveries
        assert all(row["proposer"] == 3 for row in deliveries)
        assert any(row["label"] == "BAD_UPLOADER" for row in deliveries)

    def test_telemetry_filename_is_point_unique_and_safe(self, trace_file):
        spec = replay_spec(trace_file, seed=7)
        assert telemetry_filename(spec, None) == "tiny-replay-base-seed7.jsonl"
        labelled = telemetry_filename(
            spec, {"bandwidth.trace_scale": 0.5, "protocol": "dl"}
        )
        assert labelled == "tiny-replay-trace_scale-0.5-protocol-dl-seed7.jsonl"
        assert "/" not in labelled and "=" not in labelled


class TestTraceCli:
    def test_inspect_text_and_json(self, capsys):
        assert cli_main(["trace", "inspect", "traces/wan-measured.csv"]) == 0
        out = capsys.readouterr().out
        assert "8 node(s)" in out
        assert cli_main(["trace", "inspect", "traces/lte-handover.json", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_nodes"] == 4
        assert len(payload["nodes"]) == 4

    def test_inspect_missing_file_exits_2(self, capsys, tmp_path):
        assert cli_main(["trace", "inspect", str(tmp_path / "absent.csv")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ") and "Traceback" not in err

    def test_convert_round_trips_and_transforms(self, trace_file, tmp_path, capsys):
        as_json = tmp_path / "converted.json"
        assert cli_main(["trace", "convert", trace_file, str(as_json)]) == 0
        back = tmp_path / "back.csv"
        assert cli_main(["trace", "convert", str(as_json), str(back)]) == 0
        from repro.trace import load_trace

        original = load_trace(trace_file)
        assert load_trace(back).nodes == original.nodes

        scaled = tmp_path / "scaled.csv"
        assert (
            cli_main(
                ["trace", "convert", trace_file, str(scaled), "--scale", "2", "--step", "1"]
            )
            == 0
        )
        doubled = load_trace(scaled)
        assert doubled.rates_at(0, 0.0) == (4 * MB, 4 * MB)
        assert [t for t, _, _ in doubled.nodes[0].points] == [0.0, 1.0, 2.0, 3.0]

    def test_convert_malformed_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("time,node,up_bps,down_bps\n1,0,1,1\n0,0,1,1\n")
        assert cli_main(["trace", "convert", str(bad), str(tmp_path / "out.json")]) == 2
        assert capsys.readouterr().err.startswith("error: ")

    def test_export_runs_a_spec_file_with_telemetry(self, trace_file, tmp_path, capsys):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(replay_spec(trace_file, duration=3.0).to_json())
        out_dir = tmp_path / "telemetry"
        assert (
            cli_main(
                [
                    "trace",
                    "export",
                    str(spec_path),
                    "--out",
                    str(out_dir),
                    "--interval",
                    "1.0",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["telemetry_path"] is not None
        rows = read_jsonl(payload["telemetry_path"])
        assert rows and rows[0]["kind"] == "meta"
        assert payload["summary"]["num_nodes"] == 4

    def test_export_unknown_scenario_exits_2(self, capsys):
        assert cli_main(["trace", "export", "no-such-scenario"]) == 2
        assert capsys.readouterr().err.startswith("error: ")
