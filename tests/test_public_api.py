"""The public API surface: every package exports an intentional, documented API.

Three layers of assertions:

* everything advertised in ``__all__`` resolves, and ``__all__`` is kept
  sorted so diffs of the API surface stay reviewable;
* every module (not just packages) carries a docstring;
* each package's ``__all__`` contains the names the rest of the codebase and
  the docs rely on — the *intentional* surface — so an accidental removal
  fails here before it breaks a downstream import.
"""

import importlib
import pkgutil

import pytest

PACKAGES = [
    "repro",
    "repro.adversary",
    "repro.ba",
    "repro.common",
    "repro.core",
    "repro.crypto",
    "repro.erasure",
    "repro.experiments",
    "repro.honeybadger",
    "repro.metrics",
    "repro.sim",
    "repro.trace",
    "repro.vid",
    "repro.workload",
]

#: The names each package promises to keep exporting (a subset of __all__).
INTENTIONAL_SURFACE = {
    "repro": ["DispersedLedgerNode", "HoneyBadgerNode", "NodeConfig", "ProtocolParams"],
    "repro.adversary": ["AdversarySpec", "CrashedNode", "register_adversary"],
    "repro.ba": ["BinaryAgreement", "CommonCoin"],
    "repro.common": ["ProtocolParams", "VIDInstanceId"],
    "repro.core": ["Block", "Ledger", "Mempool", "Transaction"],
    "repro.crypto": ["MerkleTree", "verify_proof"],
    "repro.erasure": ["GF256", "ReedSolomonCode"],
    "repro.experiments": [
        "ExecutionOptions",
        "ScenarioSpec",
        "get_scenario",
        "register_protocol",
        "register_workload",
        "run_experiment",
        "run_scenario",
        "sweep",
    ],
    "repro.honeybadger": ["HoneyBadgerLinkNode", "HoneyBadgerNode"],
    "repro.metrics": ["MetricsCollector"],
    "repro.sim": ["Network", "NetworkConfig", "Simulator"],
    "repro.trace": [
        "MeasuredTrace",
        "TelemetrySpec",
        "TraceRecorder",
        "load_trace",
        "save_trace",
    ],
    "repro.vid": ["AvidMInstance", "RealCodec", "VirtualCodec"],
    "repro.workload": [
        "AWS_CITIES",
        "PoissonTransactionGenerator",
        "SaturatingTransactionGenerator",
        "register_testbed",
    ],
}


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} has no __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} is advertised but missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted(package_name):
    package = importlib.import_module(package_name)
    advertised = list(package.__all__)
    assert advertised == sorted(advertised), f"{package_name}.__all__ is not sorted"
    assert len(advertised) == len(set(advertised)), f"{package_name}.__all__ has duplicates"


@pytest.mark.parametrize("package_name", sorted(INTENTIONAL_SURFACE))
def test_intentional_surface_is_exported(package_name):
    package = importlib.import_module(package_name)
    missing = [name for name in INTENTIONAL_SURFACE[package_name] if name not in package.__all__]
    assert not missing, f"{package_name} no longer exports {missing}"


def test_every_module_has_a_docstring():
    import repro

    undocumented = []
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(module_info.name)
        if not (module.__doc__ or "").strip():
            undocumented.append(module_info.name)
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_convenience_imports():
    from repro import (
        DispersedLedgerNode,
        HoneyBadgerNode,
        NodeConfig,
        ProtocolParams,
        Transaction,
    )

    params = ProtocolParams.for_n(4)
    assert params.f == 1
    assert NodeConfig().linking
    assert DispersedLedgerNode is not HoneyBadgerNode
    assert Transaction(tx_id=1, origin=0, created_at=0.0, size=1, data=b"x").size == 1
