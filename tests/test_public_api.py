"""The public API surface: everything advertised in __all__ must be importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.adversary",
    "repro.ba",
    "repro.common",
    "repro.core",
    "repro.crypto",
    "repro.erasure",
    "repro.experiments",
    "repro.honeybadger",
    "repro.metrics",
    "repro.sim",
    "repro.vid",
    "repro.workload",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} has no __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} is advertised but missing"


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_convenience_imports():
    from repro import (
        DispersedLedgerNode,
        HoneyBadgerNode,
        NodeConfig,
        ProtocolParams,
        Transaction,
    )

    params = ProtocolParams.for_n(4)
    assert params.f == 1
    assert NodeConfig().linking
    assert DispersedLedgerNode is not HoneyBadgerNode
    assert Transaction(tx_id=1, origin=0, created_at=0.0, size=1, data=b"x").size == 1
