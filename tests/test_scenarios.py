"""Scenario engine: spec round-trips, grids, registries, sweeps and the CLI."""

import json

import pytest

from repro.adversary.registry import AdversarySpec
from repro.common.errors import ConfigurationError
from repro.core.config import NodeConfig
from repro.experiments.catalog import SCENARIOS, get_scenario, list_scenarios
from repro.experiments.cli import main as cli_main
from repro.experiments.engine import run_scenario, sweep
from repro.experiments.options import ExecutionOptions
from repro.experiments.runner import WorkloadSpec, run_experiment
from repro.experiments.scenario import (
    BandwidthSpec,
    ScenarioSpec,
    TopologySpec,
    apply_override,
    build_network_config,
    expand_grid,
)
from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.network import NetworkConfig
from repro.workload.traces import MB


def tiny_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="tiny",
        topology=TopologySpec(kind="uniform", num_nodes=4, delay=0.05),
        bandwidth=BandwidthSpec(kind="constant", rate=2 * MB),
        workload=WorkloadSpec(kind="saturating", target_pending_bytes=500_000),
        node=NodeConfig(max_block_size=100_000),
        duration=8.0,
        warmup_fraction=0.0,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestSpecRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        spec = tiny_spec(
            adversary=AdversarySpec(kind="crash", count=1),
            workload=WorkloadSpec(kind="bursty", rate_bytes_per_second=2e6, duty=0.5),
            warmup=1.5,
            f=1,
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_adversary_behaviour_params_round_trip(self):
        """victim / split / stop_after survive the JSON round-trip."""
        spec = tiny_spec(
            adversary=AdversarySpec(kind="censor", count=1, victim=2),
            workload=WorkloadSpec(kind="poisson", stop_after=5.0),
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.adversary.victim == 2
        assert restored.workload.stop_after == 5.0
        split_spec = tiny_spec(adversary=AdversarySpec(kind="equivocate", count=1, split=3))
        assert ScenarioSpec.from_json(split_spec.to_json()).adversary.split == 3

    def test_json_round_trip_is_lossless(self):
        spec = tiny_spec(topology=TopologySpec(kind="cities", testbed="vultr"))
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_partial_dict_uses_defaults(self):
        spec = ScenarioSpec.from_dict(
            {"name": "partial", "topology": {"num_nodes": 7}, "duration": 5.0}
        )
        assert spec.num_nodes == 7
        assert spec.protocol == "dl"
        assert spec.workload == WorkloadSpec()

    def test_unknown_keys_fail_loudly(self):
        with pytest.raises(TypeError):
            ScenarioSpec.from_dict({"protocl": "dl"})
        with pytest.raises(TypeError):
            ScenarioSpec.from_dict({"workload": {"kidn": "poisson"}})

    def test_every_catalog_entry_round_trips(self):
        for entry in list_scenarios():
            restored = ScenarioSpec.from_json(entry.base.to_json())
            assert restored == entry.base, entry.name

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            tiny_spec(protocol="pbft")
        with pytest.raises(ConfigurationError):
            tiny_spec(duration=0.0)
        with pytest.raises(ConfigurationError):
            tiny_spec(warmup=9.0)  # >= duration
        with pytest.raises(ConfigurationError):
            tiny_spec(bandwidth=BandwidthSpec(kind="wormhole"))
        with pytest.raises(ConfigurationError):
            tiny_spec(topology=TopologySpec(kind="mesh"))
        with pytest.raises(ConfigurationError):
            AdversarySpec(kind="gremlin")


class TestGridExpansion:
    def test_point_count_is_product_of_axes(self):
        base = tiny_spec()
        grid = {
            "protocol": ("dl", "hb"),
            "seed": (0, 1, 2),
            "workload.target_pending_bytes": (100_000, 200_000),
        }
        points = expand_grid(base, grid)
        assert len(points) == 2 * 3 * 2

    def test_expansion_applies_nested_overrides(self):
        base = tiny_spec()
        points = expand_grid(base, {"workload.tx_size": (100, 200)})
        assert [spec.workload.tx_size for _, spec in points] == [100, 200]
        # the base spec is untouched (specs are frozen, replace-based)
        assert base.workload.tx_size != 100 or base.workload.tx_size != 200

    def test_dict_valued_axes_move_fields_in_lockstep(self):
        base = tiny_spec()
        points = expand_grid(
            base,
            {
                "block": (
                    {"node.max_block_size": 1_000, "node.nagle_size": 1_000},
                    {"node.max_block_size": 2_000, "node.nagle_size": 2_000},
                )
            },
        )
        assert [(s.node.max_block_size, s.node.nagle_size) for _, s in points] == [
            (1_000, 1_000),
            (2_000, 2_000),
        ]

    def test_empty_grid_yields_base(self):
        base = tiny_spec()
        assert expand_grid(base, None) == [({}, base)]

    def test_unknown_path_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_override(tiny_spec(), "workload.flux_capacitor", 88)
        with pytest.raises(ConfigurationError):
            apply_override(tiny_spec(), "paradox", 1)


class TestNetworkBuilding:
    def test_constant_model(self):
        config = build_network_config(tiny_spec())
        assert isinstance(config, NetworkConfig)
        assert config.num_nodes == 4
        assert config.ingress_trace(0).rate_at(0.0) == 2 * MB

    def test_straggler_model_caps_last_nodes(self):
        spec = tiny_spec(
            topology=TopologySpec(kind="uniform", num_nodes=6, delay=0.05),
            bandwidth=BandwidthSpec(
                kind="straggler", rate=8 * MB, degraded_rate=1 * MB, count=2
            ),
        )
        config = build_network_config(spec)
        rates = [config.ingress_trace(i).rate_at(0.0) for i in range(6)]
        assert rates == [8 * MB] * 4 + [1 * MB] * 2

    def test_flapping_model_rotates_degradation(self):
        spec = tiny_spec(
            topology=TopologySpec(kind="uniform", num_nodes=4, delay=0.05),
            bandwidth=BandwidthSpec(
                kind="flapping",
                rate=4 * MB,
                degraded_rate=0.5 * MB,
                count=2,
                period=10.0,
                degraded_for=4.0,
            ),
            duration=20.0,
        )
        config = build_network_config(spec)
        flaky = [config.ingress_trace(i) for i in (2, 3)]
        # staggered: the two flaky nodes are not degraded at the same moments
        degraded_windows = [
            {t for t in range(20) if trace.rate_at(t + 0.01) == 0.5 * MB} for trace in flaky
        ]
        assert degraded_windows[0] and degraded_windows[1]
        assert degraded_windows[0] != degraded_windows[1]
        # steady nodes never flap
        assert all(config.ingress_trace(0).rate_at(t) == 4 * MB for t in range(20))

    def test_cities_topology_uses_testbed(self):
        spec = tiny_spec(topology=TopologySpec(kind="cities", testbed="vultr"))
        config = build_network_config(spec)
        assert config.num_nodes == 15

    def test_gauss_markov_is_seed_deterministic(self):
        spec = tiny_spec(
            bandwidth=BandwidthSpec(kind="gauss-markov", rate=5 * MB, sigma=1 * MB),
            duration=10.0,
            seed=7,
        )
        a, b = build_network_config(spec), build_network_config(spec)
        times = [0.5 * k for k in range(20)]
        assert [a.ingress_trace(1).rate_at(t) for t in times] == [
            b.ingress_trace(1).rate_at(t) for t in times
        ]


class TestRunScenario:
    def test_sim_scenario_produces_result(self):
        outcome = run_scenario(tiny_spec(duration=10.0))
        assert outcome.result is not None
        summary = outcome.summary()
        assert summary["protocol"] == "dl"
        assert summary["num_nodes"] == 4
        assert summary["mean_throughput"] > 0
        assert summary["delivered_epochs"] >= 1
        assert outcome.wall_clock_seconds > 0

    def test_crash_adversary_zeroes_crashed_node(self):
        outcome = run_scenario(
            tiny_spec(duration=10.0, adversary=AdversarySpec(kind="crash", count=1))
        )
        result = outcome.result
        assert result.throughputs[-1] == 0.0  # the crashed node confirmed nothing
        assert max(result.throughputs[:-1]) > 0  # the honest nodes kept going
        assert outcome.summary()["delivered_epochs"] >= 1  # judged at honest nodes

    def test_crash_after_adversary_starts_honest(self):
        outcome = run_scenario(
            tiny_spec(
                duration=12.0,
                adversary=AdversarySpec(kind="crash-after", count=1, crash_time=6.0),
            )
        )
        assert outcome.result.delivered_epochs[-1] >= 1  # participated before the crash

    def test_censor_adversary_on_timed_simulator(self):
        """`adversary.kind: censor` runs on the bandwidth-accurate network."""
        outcome = run_scenario(
            tiny_spec(
                duration=8.0,
                workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=400_000.0),
                adversary=AdversarySpec(kind="censor", count=1, victim=0),
            )
        )
        summary = outcome.summary()
        assert summary["adversary_kind"] == "censor"
        assert summary["adversary_nodes"] == [3]
        assert summary["victim"] == 0
        # the victim's transactions still commit (linking defeats censorship)
        assert summary["victim_commit_p50"] is not None
        assert summary["victim_inclusion_delay"] is not None
        # the censor is a live participant, not a crash: liveness at everyone
        assert summary["delivered_epochs"] >= 1
        assert min(outcome.result.throughputs) > 0

    def test_equivocate_adversary_on_timed_simulator_virtual_plane(self):
        """Equivocation works on the virtual data plane the experiments use."""
        outcome = run_scenario(
            tiny_spec(
                duration=8.0,
                workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=400_000.0),
                adversary=AdversarySpec(kind="equivocate", count=1),
            )
        )
        summary = outcome.summary()
        assert summary["adversary_kind"] == "equivocate"
        # every commit of the equivocator's slot became a BAD_UPLOADER
        # placeholder, detected in the very first epoch it proposed
        assert summary["equivocation_detected_epoch"] == 1
        assert summary["bad_uploader_deliveries"] > 0
        # honest nodes keep confirming their own load
        assert summary["delivered_epochs"] >= 1
        assert max(outcome.result.throughputs) > 0

    def test_equivocate_adversary_on_real_data_plane(self):
        """The same spec on the real codec exercises the re-encode check."""
        outcome = run_scenario(
            tiny_spec(
                duration=6.0,
                workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=100_000.0),
                node=NodeConfig(data_plane="real", max_block_size=50_000),
                adversary=AdversarySpec(kind="equivocate", count=1, split=2),
            )
        )
        summary = outcome.summary()
        assert summary["bad_uploader_deliveries"] > 0
        assert summary["equivocation_detected_epoch"] == 1

    def test_adversary_metrics_deterministic_across_runs(self):
        spec = tiny_spec(
            duration=6.0,
            workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=400_000.0),
            adversary=AdversarySpec(kind="censor", count=1, victim=0),
        )
        assert run_scenario(spec).summary() == run_scenario(spec).summary()

    def test_workload_stop_after_cuts_load(self):
        """stop_after freezes offered load; delivered bytes stop growing."""
        stopped = run_scenario(
            tiny_spec(
                duration=10.0,
                workload=WorkloadSpec(
                    kind="poisson", rate_bytes_per_second=400_000.0, stop_after=2.0
                ),
            )
        )
        flowing = run_scenario(
            tiny_spec(
                duration=10.0,
                workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=400_000.0),
            )
        )
        assert stopped.summary()["mean_throughput"] < flowing.summary()["mean_throughput"]
        with pytest.raises(ValueError):
            WorkloadSpec(kind="poisson", stop_after=0.0)

    def test_vid_cost_scenario(self):
        from repro.experiments.fig02 import measure_avid_m_dispersal_cost, vid_cost_curve

        spec = ScenarioSpec(
            name="vid",
            kind="vid-cost",
            topology=TopologySpec(kind="uniform", num_nodes=8),
            block_size=100_000,
        )
        summary = run_scenario(spec).summary()
        row = next(r for r in vid_cost_curve((8,), (100_000,)) if r.n == 8)
        assert summary["avid_m"] == row.avid_m
        assert summary["avid_fp"] == row.avid_fp
        assert summary["lower_bound"] == row.lower_bound
        assert summary["measured_avid_m"] == measure_avid_m_dispersal_cost(8, 100_000)

    def test_matches_pre_engine_driver(self):
        """A spec-built run equals the same conditions wired by hand."""
        spec = tiny_spec(duration=10.0, seed=3)
        via_engine = run_scenario(spec).result
        rate = 2 * MB
        by_hand = run_experiment(
            "dl",
            NetworkConfig(
                num_nodes=4,
                propagation_delay=0.05,
                egress_traces=[ConstantBandwidth(rate)] * 4,
                ingress_traces=[ConstantBandwidth(rate)] * 4,
            ),
            10.0,
            workload=WorkloadSpec(kind="saturating", target_pending_bytes=500_000),
            node_config=NodeConfig(max_block_size=100_000),
            seed=3,
        )
        assert via_engine.throughputs == by_hand.throughputs
        assert via_engine.delivered_epochs == by_hand.delivered_epochs
        assert via_engine.events_processed == by_hand.events_processed


class TestSweep:
    def test_parallel_and_serial_summaries_identical(self):
        base = tiny_spec(duration=6.0)
        grid = {"protocol": ("dl", "hb"), "seed": (0, 1)}
        serial = sweep(base, grid, options=ExecutionOptions(parallel=False))
        parallel = sweep(base, grid, options=ExecutionOptions(parallel=True, workers=2))
        assert len(serial.points) == 4
        assert parallel.workers == 2
        assert serial.summaries() == parallel.summaries()

    def test_sweep_orders_points_deterministically(self):
        base = tiny_spec(duration=6.0)
        result = sweep(base, {"seed": (2, 0, 1)}, options=ExecutionOptions(parallel=False))
        assert [point.spec.seed for point in result.points] == [2, 0, 1]
        assert result.events_processed == sum(
            point.result.events_processed for point in result.points
        )

    def test_table_renders_every_point(self):
        base = tiny_spec(duration=6.0)
        result = sweep(base, {"seed": (0, 1)}, options=ExecutionOptions(parallel=False))
        table = result.table(columns=("label", "mean_throughput"))
        assert table.count("\n") == 3  # header + rule + 2 rows


class TestCatalog:
    def test_figures_and_new_scenarios_present(self):
        names = set(SCENARIOS)
        assert {"fig02-vid-cost", "fig08-geo", "fig10-latency", "fig11a-spatial",
                "fig11b-temporal", "fig12-scalability", "fig15-vultr"} <= names
        beyond_paper = {e.name for e in list_scenarios() if e.figure is None}
        assert len(beyond_paper) >= 4

    def test_fig08_point_matches_geo_driver(self):
        """`run fig08-geo` reproduces the dedicated Fig. 8 driver bit-for-bit."""
        from dataclasses import replace

        from repro.experiments.geo import run_geo_throughput

        spec = replace(get_scenario("fig08-geo").base, protocol="dl", duration=8.0, seed=2)
        via_engine = run_scenario(spec).result
        via_driver = run_geo_throughput(protocols=("dl",), duration=8.0, seed=2).results["dl"]
        assert via_engine.throughputs == via_driver.throughputs
        assert via_engine.delivered_epochs == via_driver.delivered_epochs
        assert via_engine.events_processed == via_driver.events_processed

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("fig99")

    def test_catalog_grids_expand(self):
        for entry in list_scenarios():
            points = expand_grid(entry.base, entry.grid)
            assert len(points) == entry.num_points(), entry.name


class TestCli:
    def test_list_runs(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig08-geo" in out and "bandwidth-flapping" in out

    def test_show_emits_loadable_spec(self, capsys):
        assert cli_main(["show", "straggler-hetero"]) == 0
        payload = json.loads(capsys.readouterr().out)
        restored = ScenarioSpec.from_dict(payload["base"])
        assert restored.bandwidth.kind == "straggler"

    def test_run_fig02_json(self, capsys):
        assert (
            cli_main(
                [
                    "run",
                    "fig02-vid-cost",
                    "--serial",
                    "--json",
                    "--grid",
                    "topology.num_nodes=8",
                    "--grid",
                    "block_size=100000",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["summaries"]) == 1
        assert payload["summaries"][0]["measured_avid_m"] > 0

    def test_run_spec_file_round_trips_with_in_memory_run(self, tmp_path, capsys):
        """spec -> JSON file -> CLI run equals running the spec in memory."""
        spec = tiny_spec(
            duration=5.0,
            adversary=AdversarySpec(kind="censor", count=1, victim=0),
            workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=400_000.0),
        )
        path = tmp_path / "tiny.json"
        path.write_text(spec.to_json())
        assert cli_main(["run", str(path), "--serial", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == spec.name
        assert payload["summaries"] == [run_scenario(spec).summary()]

    def test_show_spec_file(self, tmp_path, capsys):
        spec = tiny_spec(duration=5.0)
        path = tmp_path / "tiny.json"
        path.write_text(spec.to_json())
        assert cli_main(["show", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert ScenarioSpec.from_dict(payload["base"]) == spec

    @pytest.mark.parametrize(
        "content",
        [
            "{ not json",                                   # malformed JSON
            '{"protocl": "dl"}',                            # unknown field
            '{"duration": -1}',                             # invalid value
            '{"workload": {"kind": "wormhole"}}',           # unknown registry kind
            '{"adversary": {"kind": "censor", "victim": -3}}',  # bad behaviour param
        ],
    )
    def test_malformed_spec_file_is_a_clean_error(self, tmp_path, capsys, content):
        """Bad spec files exit 2 with a one-line error, never a traceback."""
        path = tmp_path / "broken.json"
        path.write_text(content)
        assert cli_main(["run", str(path), "--serial"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err

    def test_missing_spec_file_is_a_clean_error(self, tmp_path, capsys):
        assert cli_main(["run", str(tmp_path / "absent.json")]) == 2
        assert capsys.readouterr().err.startswith("error: ")

    def test_stray_file_cannot_shadow_catalog_name(self, tmp_path, monkeypatch):
        """A file named like a catalog entry in the cwd is never picked up."""
        from repro.experiments.cli import resolve_entry

        (tmp_path / "fig08-geo").write_text("not a spec")
        monkeypatch.chdir(tmp_path)
        entry = resolve_entry("fig08-geo")
        assert entry.figure is not None  # the catalog entry, not the file

    def test_curated_spec_files_are_valid(self):
        """Every checked-in scenarios/*.json parses and round-trips."""
        from pathlib import Path

        spec_dir = Path(__file__).parent.parent / "scenarios"
        paths = sorted(spec_dir.glob("*.json"))
        assert len(paths) >= 5
        for path in paths:
            spec = ScenarioSpec.from_json(path.read_text())
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec, path.name

    def test_run_with_overrides(self, capsys):
        assert (
            cli_main(
                [
                    "run",
                    "adversary-crash-mix",
                    "--serial",
                    "--duration",
                    "6",
                    "--json",
                    "--set",
                    "warmup_fraction=0.0",
                    "--grid",
                    "protocol=dl",
                    "--grid",
                    'faults=[{"adversary.kind": "crash", "adversary.count": 1}]',
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["summaries"]) == 1
        assert payload["summaries"][0]["protocol"] == "dl"
