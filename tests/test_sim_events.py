"""Tests for the discrete-event simulator core."""

import pytest

from repro.sim.events import InternalCallback, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.schedule(1.5, lambda: order.append("middle"))
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_ties_run_in_fifo_order(self):
        sim = Simulator()
        order = []
        for label in ("a", "b", "c"):
            sim.schedule(1.0, lambda label=label: order.append(label))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_may_schedule_more_events(self):
        sim = Simulator()
        hits = []

        def recur(depth):
            hits.append(sim.now)
            if depth > 0:
                sim.schedule(1.0, lambda: recur(depth - 1))

        sim.schedule(0.0, lambda: recur(3))
        sim.run()
        assert hits == [0.0, 1.0, 2.0, 3.0]


class TestRunLimits:
    def test_run_until_stops_before_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        end = sim.run(until=5.0)
        assert fired == [1]
        assert end == 5.0
        assert sim.pending_events == 1

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        assert sim.run(until=7.0) == 7.0
        assert sim.now == 7.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_processed_events_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 4

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("b"))
        sim.run(until=2.0)
        sim.run()
        assert fired == ["a", "b"]


class TestCancellation:
    def test_cancelled_timer_never_fires(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_event(1.0, lambda: fired.append("cancelled"))
        sim.schedule(2.0, lambda: fired.append("kept"))
        assert event.cancel() is True
        sim.run()
        assert fired == ["kept"]

    def test_cancel_is_o1_and_lazy(self):
        sim = Simulator()
        event = sim.schedule_event(5.0, lambda: None)
        event.cancel()
        # Lazy deletion: the dead entry stays in the heap but is not pending.
        assert sim.pending_events == 0
        assert sim.run() == 0.0  # nothing executes, clock does not advance

    def test_cancelling_twice_is_noop(self):
        sim = Simulator()
        event = sim.schedule_event(1.0, lambda: None)
        assert event.cancel() is True
        assert event.cancel() is False
        assert event.cancelled

    def test_cancelling_executed_event_is_noop(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_event(1.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]
        assert event.cancelled  # executing retires the handle
        assert event.cancel() is False
        assert sim.processed_events == 1

    def test_cancelled_events_do_not_count_as_processed(self):
        sim = Simulator()
        events = [sim.schedule_event(float(i), lambda: None) for i in range(5)]
        events[1].cancel()
        events[3].cancel()
        sim.run()
        assert sim.processed_events == 3

    def test_pending_events_excludes_lazily_deleted_entries(self):
        sim = Simulator()
        events = [sim.schedule_event(float(i + 1), lambda: None) for i in range(4)]
        sim.schedule(10.0, lambda: None)
        assert sim.pending_events == 5
        events[0].cancel()
        events[2].cancel()
        assert sim.pending_events == 3

    def test_cancel_from_inside_an_event(self):
        sim = Simulator()
        fired = []
        later = sim.schedule_event(2.0, lambda: fired.append("later"))
        sim.schedule(1.0, later.cancel)
        sim.schedule(3.0, lambda: fired.append("end"))
        sim.run()
        assert fired == ["end"]

    def test_mass_cancellation_compacts_and_survivors_fire(self):
        # Enough cancellations to cross the lazy-deletion compaction
        # threshold; the surviving events still run in order.
        sim = Simulator()
        fired = []
        doomed = [sim.schedule_event(1.0 + i, lambda: fired.append("dead")) for i in range(500)]
        sim.schedule_event(1000.0, lambda: fired.append("a"))
        sim.schedule_event(1001.0, lambda: fired.append("b"))
        for event in doomed:
            event.cancel()
        assert sim.pending_events == 2
        sim.run()
        assert fired == ["a", "b"]
        assert sim.now == 1001.0

    def test_schedule_event_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_event(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_event_at(1.0, lambda: None)


class TestInternalCallbacks:
    def test_internal_callbacks_run_in_order_but_are_not_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("before"))
        sim.schedule_internal(1.0, InternalCallback(lambda: fired.append("internal")))
        sim.schedule(1.0, lambda: fired.append("after"))
        sim.run()
        assert fired == ["before", "internal", "after"]
        assert sim.processed_events == 2  # the internal hand-off is not counted
