"""Tests for the discrete-event simulator core."""

import pytest

from repro.sim.events import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.schedule(1.5, lambda: order.append("middle"))
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_ties_run_in_fifo_order(self):
        sim = Simulator()
        order = []
        for label in ("a", "b", "c"):
            sim.schedule(1.0, lambda label=label: order.append(label))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_may_schedule_more_events(self):
        sim = Simulator()
        hits = []

        def recur(depth):
            hits.append(sim.now)
            if depth > 0:
                sim.schedule(1.0, lambda: recur(depth - 1))

        sim.schedule(0.0, lambda: recur(3))
        sim.run()
        assert hits == [0.0, 1.0, 2.0, 3.0]


class TestRunLimits:
    def test_run_until_stops_before_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        end = sim.run(until=5.0)
        assert fired == [1]
        assert end == 5.0
        assert sim.pending_events == 1

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        assert sim.run(until=7.0) == 7.0
        assert sim.now == 7.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_processed_events_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 4

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("b"))
        sim.run(until=2.0)
        sim.run()
        assert fired == ["a", "b"]
