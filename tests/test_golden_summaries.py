"""Golden-summary regression suite.

Every named catalog scenario is re-run at its pinned golden configuration
(`repro.experiments.golden`) and the canonical JSON of its summaries is
compared **bit-for-bit** against the snapshot under ``tests/golden/``.  A
behaviour change anywhere in the stack — event loop, pipes, codec, protocol
logic, summary schema — shows up as a snapshot diff; perf-only PRs must
leave every file untouched.

Regenerate after an intentional behaviour change with::

    PYTHONPATH=src python -m pytest tests/test_golden_summaries.py --update-golden

and commit the diff alongside the change that caused it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.golden import canonical_json, golden_names, golden_payload

GOLDEN_DIR = Path(__file__).parent / "golden"

pytestmark = pytest.mark.golden


def test_every_snapshot_belongs_to_a_scenario():
    """Stale snapshot files (renamed/removed scenarios) fail loudly."""
    known = set(golden_names())
    on_disk = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert on_disk <= known, f"stale golden files: {sorted(on_disk - known)}"


@pytest.mark.parametrize("name", golden_names())
def test_golden_summary(name: str, update_golden: bool):
    path = GOLDEN_DIR / f"{name}.json"
    text = canonical_json(golden_payload(name))
    if update_golden:
        path.write_text(text)
        return
    assert path.exists(), (
        f"missing golden snapshot {path}; generate it with "
        f"`pytest tests/test_golden_summaries.py --update-golden`"
    )
    stored = path.read_text()
    if stored != text:
        # Surface *which* summaries moved before the exact-bytes assertion,
        # so a failure names the drifted fields instead of a wall of JSON.
        old = json.loads(stored)
        new = json.loads(text)
        assert old == new, f"golden summaries drifted for {name!r}"
    assert stored == text, f"golden snapshot for {name!r} is not byte-identical"
