"""Golden-summary regression suite.

Every named catalog scenario is re-run at its pinned golden configuration
(`repro.experiments.golden`) and the canonical JSON of its summaries is
compared **bit-for-bit** against the snapshot under ``tests/golden/``.  A
behaviour change anywhere in the stack — event loop, pipes, codec, protocol
logic, summary schema — shows up as a snapshot diff; perf-only PRs must
leave every file untouched.

The suite is two-tier: scenarios in ``SLOW_GOLDEN`` are marked ``slow`` and
deselected from plain ``pytest`` runs (see ``pytest.ini``), so the local
tier-1 loop verifies the fast tier only; CI runs both tiers with
``-m golden``.  Regenerate **all** snapshots after an intentional behaviour
change with::

    PYTHONPATH=src python -m pytest tests/test_golden_summaries.py -m golden --update-golden

(the ``-m golden`` overrides the default ``-m "not slow"`` so the slow tier
regenerates too) and commit the diff alongside the change that caused it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.golden import (
    SLOW_GOLDEN,
    canonical_json,
    golden_names,
    golden_payload,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

pytestmark = pytest.mark.golden


def test_every_snapshot_belongs_to_a_scenario():
    """Stale snapshot files (renamed/removed scenarios) fail loudly."""
    known = set(golden_names())
    on_disk = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert on_disk <= known, f"stale golden files: {sorted(on_disk - known)}"


def test_slow_tier_names_real_scenarios():
    """The slow tier is a subset of the catalog (no stale names)."""
    assert SLOW_GOLDEN <= set(golden_names()), sorted(SLOW_GOLDEN - set(golden_names()))


@pytest.mark.parametrize(
    "name",
    [
        pytest.param(name, marks=[pytest.mark.slow] if name in SLOW_GOLDEN else [])
        for name in golden_names()
    ],
)
def test_golden_summary(name: str, update_golden: bool):
    path = GOLDEN_DIR / f"{name}.json"
    text = canonical_json(golden_payload(name))
    if update_golden:
        path.write_text(text)
        return
    assert path.exists(), (
        f"missing golden snapshot {path}; generate it with "
        f"`pytest tests/test_golden_summaries.py --update-golden`"
    )
    stored = path.read_text()
    if stored != text:
        # Surface *which* summaries moved before the exact-bytes assertion,
        # so a failure names the drifted fields instead of a wall of JSON.
        old = json.loads(stored)
        new = json.loads(text)
        assert old == new, f"golden summaries drifted for {name!r}"
    assert stored == text, f"golden snapshot for {name!r} is not byte-identical"
