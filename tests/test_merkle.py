"""Tests for the Merkle tree and inclusion proofs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import DIGEST_SIZE, hash_data, hash_pair
from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root, verify_proof


class TestHashing:
    def test_digest_size(self):
        assert len(hash_data(b"x")) == DIGEST_SIZE
        assert len(hash_pair(b"a" * 32, b"b" * 32)) == DIGEST_SIZE

    def test_leaf_and_node_domains_differ(self):
        # Leaf hashing and pair hashing must not collide even on equal input
        # bytes (second-preimage resistance between tree levels).
        data = b"a" * 64
        assert hash_data(data) != hash_pair(data[:32], data[32:])

    def test_deterministic(self):
        assert hash_data(b"hello") == hash_data(b"hello")
        assert hash_data(b"hello") != hash_data(b"hellO")


class TestMerkleTree:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        proof = tree.proof(0)
        assert verify_proof(tree.root, b"only", proof)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_proofs_verify_for_all_leaves(self):
        leaves = [f"leaf-{i}".encode() for i in range(7)]
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            assert verify_proof(tree.root, leaf, tree.proof(index))

    def test_wrong_leaf_fails(self):
        leaves = [f"leaf-{i}".encode() for i in range(8)]
        tree = MerkleTree(leaves)
        assert not verify_proof(tree.root, b"not-a-leaf", tree.proof(3))

    def test_wrong_index_fails(self):
        leaves = [f"leaf-{i}".encode() for i in range(8)]
        tree = MerkleTree(leaves)
        proof = tree.proof(3)
        wrong = MerkleProof(index=4, siblings=proof.siblings)
        assert not verify_proof(tree.root, leaves[3], wrong)

    def test_proof_against_other_root_fails(self):
        tree_a = MerkleTree([b"a", b"b", b"c", b"d"])
        tree_b = MerkleTree([b"a", b"b", b"c", b"e"])
        assert not verify_proof(tree_b.root, b"a", tree_a.proof(0))

    def test_out_of_range_proof(self):
        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(IndexError):
            tree.proof(2)
        with pytest.raises(IndexError):
            tree.proof(-1)

    def test_num_leaves_excludes_padding(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        assert tree.num_leaves == 3

    def test_root_depends_on_leaf_order(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"b", b"a"])

    def test_padding_distinguishes_sizes(self):
        # A 3-leaf tree and the same 3 leaves plus an explicit padding-like
        # leaf must not share a root.
        assert merkle_root([b"a", b"b", b"c"]) != merkle_root([b"a", b"b", b"c", b"c"])

    def test_proof_wire_size(self):
        tree = MerkleTree([bytes([i]) for i in range(16)])
        proof = tree.proof(0)
        assert proof.wire_size == 4 + DIGEST_SIZE * 4


class TestProofsAll:
    @pytest.mark.parametrize("count", [1, 2, 3, 7, 8, 16, 33])
    def test_matches_individual_proofs(self, count):
        leaves = [f"leaf-{i}".encode() for i in range(count)]
        tree = MerkleTree(leaves)
        proofs = tree.proofs_all()
        assert proofs == [tree.proof(i) for i in range(count)]

    def test_all_batch_proofs_verify(self):
        leaves = [bytes([i]) * (i + 1) for i in range(11)]
        tree = MerkleTree(leaves)
        for leaf, proof in zip(leaves, tree.proofs_all()):
            assert verify_proof(tree.root, leaf, proof)


class TestMerkleProperties:
    @given(
        leaves=st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=33),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_every_proof_verifies(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        assert verify_proof(tree.root, leaves[index], tree.proof(index))

    @given(leaves=st.lists(st.binary(min_size=1, max_size=16), min_size=2, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_tampered_leaf_never_verifies(self, leaves):
        tree = MerkleTree(leaves)
        tampered = leaves[0] + b"\x01"
        assert not verify_proof(tree.root, tampered, tree.proof(0))
