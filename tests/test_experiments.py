"""Smoke tests for the experiment harness (small, fast configurations)."""

import pytest

from repro.common.params import ProtocolParams
from repro.experiments.fig02 import crossover_n, measure_avid_m_dispersal_cost, vid_cost_curve
from repro.experiments.runner import (
    PROTOCOLS,
    ExperimentResult,
    WorkloadSpec,
    run_experiment,
    run_protocol_comparison,
)
from repro.experiments.scalability import model_sweep, simulate_point
from repro.experiments.summary import HeadlineNumbers, headline_from_results
from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.network import NetworkConfig
from repro.vid.costs import avid_m_per_node_cost, normalised_cost
from repro.core.config import NodeConfig


def tiny_network(n=4, rate=2_000_000.0, delay=0.05):
    return NetworkConfig(
        num_nodes=n,
        propagation_delay=delay,
        egress_traces=[ConstantBandwidth(rate)] * n,
        ingress_traces=[ConstantBandwidth(rate)] * n,
    )


class TestRunner:
    def test_workload_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(kind="replay")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("pbft", tiny_network(), duration=1.0)

    def test_duration_must_exceed_warmup(self):
        with pytest.raises(ValueError):
            run_experiment("dl", tiny_network(), duration=1.0, warmup=2.0)

    def test_params_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("dl", tiny_network(4), duration=1.0, params=ProtocolParams.for_n(7))

    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
    def test_all_protocols_run_and_confirm(self, protocol):
        result = run_experiment(
            protocol,
            tiny_network(),
            duration=12.0,
            workload=WorkloadSpec(kind="saturating", target_pending_bytes=500_000),
            node_config=NodeConfig(max_block_size=100_000),
        )
        assert isinstance(result, ExperimentResult)
        assert result.num_nodes == 4
        assert result.mean_throughput > 0
        assert all(epoch >= 1 for epoch in result.delivered_epochs)
        assert result.mean_block_size > 0

    def test_poisson_workload_produces_latency_samples(self):
        result = run_experiment(
            "dl",
            tiny_network(),
            duration=12.0,
            workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=50_000),
        )
        samples = [summary for summary in result.latency_local if summary is not None]
        assert samples
        assert all(summary.p50 > 0 for summary in samples)

    def test_comparison_runs_each_protocol_once(self):
        results = run_protocol_comparison(
            ("dl", "hb"),
            tiny_network(),
            duration=10.0,
            workload=WorkloadSpec(kind="saturating", target_pending_bytes=300_000),
            node_config=NodeConfig(max_block_size=100_000),
        )
        assert set(results) == {"dl", "hb"}


class TestFig02:
    def test_curve_contains_all_points(self):
        rows = vid_cost_curve(n_values=(4, 16, 64), block_sizes=(100_000,))
        assert len(rows) == 3
        assert all(row.avid_m < row.avid_fp for row in rows)
        assert all(row.avid_m >= row.lower_bound for row in rows)

    def test_measured_cost_matches_model(self):
        n, block_size = 7, 50_000
        measured = measure_avid_m_dispersal_cost(n, block_size)
        modelled = normalised_cost(
            avid_m_per_node_cost(ProtocolParams.for_n(n), block_size), block_size
        )
        assert measured == pytest.approx(modelled, rel=0.25)

    def test_batched_dispersal_matches_single(self):
        from repro.experiments.fig02 import measure_avid_m_batch_dispersal_cost

        n, block_size = 7, 50_000
        single = measure_avid_m_dispersal_cost(n, block_size)
        batched = measure_avid_m_batch_dispersal_cost(n, block_size, num_blocks=3)
        assert batched == pytest.approx(single, rel=1e-9)

    def test_crossover_exists_for_small_blocks(self):
        threshold = crossover_n(100_000)
        assert threshold is not None and threshold < 128
        assert crossover_n(100_000_000, max_n=60) is None


class TestScalability:
    def test_model_sweep_shape(self):
        points = model_sweep(cluster_sizes=(16, 64), block_sizes=(500_000,))
        assert len(points) == 2
        by_n = {point.n: point for point in points}
        assert by_n[64].dispersal_fraction < by_n[16].dispersal_fraction

    def test_simulated_point_smoke(self):
        point = simulate_point(n=4, block_size=100_000, duration=10.0, bandwidth=2_000_000.0)
        assert point.throughput > 0
        assert 0 < point.dispersal_fraction < 1


class TestSummary:
    def test_headline_from_results(self):
        results = run_protocol_comparison(
            ("dl", "hb-link", "hb"),
            tiny_network(),
            duration=10.0,
            workload=WorkloadSpec(kind="saturating", target_pending_bytes=300_000),
            node_config=NodeConfig(max_block_size=100_000),
        )
        from repro.experiments.geo import GeoResult
        from repro.workload.cities import AWS_CITIES

        geo = GeoResult(cities=AWS_CITIES[:4], duration=10.0, results=results)
        headline = headline_from_results(geo)
        assert isinstance(headline, HeadlineNumbers)
        assert headline.dl_over_hb is not None
        assert headline.latency_reduction is None
        assert "dl_over_hb" in headline.as_dict()
