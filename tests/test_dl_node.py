"""Integration tests for DispersedLedger nodes on the instant router.

These check the BFT properties of S2.1 — Agreement, Total Order, Validity —
end to end, with real erasure-coded blocks, under message reordering and in
the presence of crashed, equivocating and censoring nodes.
"""

import pytest

from repro.adversary.censor import CensoringNode
from repro.adversary.crash import CrashedNode
from repro.adversary.equivocator import EquivocatingDisperserNode
from repro.core.config import NodeConfig
from repro.core.node import DLCoupledNode, DispersedLedgerNode
from tests.conftest import build_cluster, submit_texts


def assert_identical_ledgers(nodes, ids=None):
    """All listed nodes must have byte-identical delivery sequences."""
    ids = ids if ids is not None else range(len(nodes))
    digests = [tuple(nodes[i].ledger.digest_sequence()) for i in ids]
    assert len(set(digests)) == 1, "correct nodes delivered different sequences"


class TestHappyPath:
    def test_agreement_and_total_order(self, params4):
        network, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=3)
        for i, node in enumerate(nodes):
            submit_texts(node, [f"tx-{i}-{k}" for k in range(4)])
        network.start()
        network.run()
        assert_identical_ledgers(nodes)
        assert all(node.delivered_epoch == 3 for node in nodes)

    def test_validity_all_submitted_transactions_delivered(self, params4):
        network, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=3)
        submitted = []
        for i, node in enumerate(nodes):
            submitted += [tx.tx_id for tx in submit_texts(node, [f"v-{i}-{k}" for k in range(3)])]
        network.start()
        network.run()
        delivered_ids = {tx.tx_id for tx in nodes[0].ledger.transactions()}
        assert set(submitted) <= delivered_ids

    def test_no_transaction_delivered_twice(self, params4):
        network, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=4)
        for i, node in enumerate(nodes):
            submit_texts(node, [f"once-{i}-{k}" for k in range(3)])
        network.start()
        network.run()
        ids = [tx.tx_id for tx in nodes[0].ledger.transactions()]
        assert len(ids) == len(set(ids))

    def test_empty_epochs_still_advance(self, params4):
        network, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=2)
        network.start()
        network.run()
        assert all(node.delivered_epoch == 2 for node in nodes)
        assert all(entry.block.is_empty for entry in nodes[0].ledger.entries)

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_agreement_under_random_delivery_order(self, params4, seed):
        network, nodes = build_cluster(DispersedLedgerNode, params4, seed=seed, max_epochs=3)
        for i, node in enumerate(nodes):
            submit_texts(node, [f"rnd-{i}-{k}" for k in range(2)])
        network.start()
        network.run()
        assert_identical_ledgers(nodes)

    def test_seven_node_cluster(self, params7):
        network, nodes = build_cluster(DispersedLedgerNode, params7, max_epochs=2)
        for i, node in enumerate(nodes):
            submit_texts(node, [f"seven-{i}"])
        network.start()
        network.run()
        assert_identical_ledgers(nodes)
        assert nodes[0].ledger.num_transactions == 7

    def test_observation_arrays_track_completion(self, params4):
        network, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=2)
        network.start()
        network.run()
        for node in nodes:
            assert node.observation_array() == (2, 2, 2, 2)


class TestVArraysAndLinking:
    def test_blocks_carry_v_arrays_when_linking(self, params4):
        network, nodes = build_cluster(DispersedLedgerNode, params4, max_epochs=2)
        network.start()
        network.run()
        second_epoch_blocks = [
            entry.block for entry in nodes[0].ledger.entries if entry.epoch == 2
        ]
        assert second_epoch_blocks
        assert all(len(block.v_array) == 4 for block in second_epoch_blocks)

    def test_no_v_arrays_without_linking(self, params4):
        config = NodeConfig(data_plane="real", linking=False)
        network, nodes = build_cluster(
            DispersedLedgerNode, params4, config=config, max_epochs=2
        )
        network.start()
        network.run()
        assert all(block.v_array == () for entry in nodes[0].ledger.entries for block in [entry.block])


class TestCrashFaults:
    def test_progress_with_f_crashed_nodes(self, params4):
        network, nodes = build_cluster(
            DispersedLedgerNode, params4, max_epochs=3, node_classes={3: _crashed_factory()}
        )
        for i in range(3):
            submit_texts(nodes[i], [f"crash-{i}-{k}" for k in range(3)])
        network.start()
        network.run()
        correct = [0, 1, 2]
        assert_identical_ledgers(nodes, correct)
        assert all(nodes[i].delivered_epoch == 3 for i in correct)
        # The crashed node's slot is never committed.
        proposers = {entry.proposer for entry in nodes[0].ledger.entries}
        assert 3 not in proposers

    def test_correct_transactions_survive_crash(self, params7):
        network, nodes = build_cluster(
            DispersedLedgerNode,
            params7,
            max_epochs=3,
            node_classes={5: _crashed_factory(), 6: _crashed_factory()},
        )
        submitted = [tx.tx_id for tx in submit_texts(nodes[0], ["a", "b", "c"])]
        network.start()
        network.run()
        delivered = {tx.tx_id for tx in nodes[1].ledger.transactions()}
        assert set(submitted) <= delivered


class TestByzantineFaults:
    def test_equivocating_disperser_is_neutralised(self, params4):
        network, nodes = build_cluster(
            DispersedLedgerNode,
            params4,
            max_epochs=3,
            node_classes={2: EquivocatingDisperserNode},
        )
        for i in (0, 1, 3):
            submit_texts(nodes[i], [f"eq-{i}-{k}" for k in range(2)])
        network.start()
        network.run()
        correct = [0, 1, 3]
        assert_identical_ledgers(nodes, correct)
        # Whenever the equivocator's slot was committed, every correct node
        # recorded the same BAD_UPLOADER placeholder for it.
        for i in correct:
            for entry in nodes[i].ledger.entries:
                if entry.proposer == 2:
                    assert entry.block.label == "BAD_UPLOADER" or entry.block.is_empty

    def test_censor_cannot_suppress_victim_blocks(self, params4):
        network, nodes = build_cluster(
            DispersedLedgerNode,
            params4,
            max_epochs=3,
            node_classes={1: lambda *a, **kw: CensoringNode(*a, victim=0, **kw)},
        )
        victim_txs = [tx.tx_id for tx in submit_texts(nodes[0], ["victim-1", "victim-2"])]
        network.start()
        network.run()
        correct = [0, 2, 3]
        assert_identical_ledgers(nodes, correct)
        delivered = {tx.tx_id for tx in nodes[2].ledger.transactions()}
        assert set(victim_txs) <= delivered


class TestDLCoupled:
    def test_coupled_node_behaves_like_dl_when_caught_up(self, params4):
        network, nodes = build_cluster(DLCoupledNode, params4, max_epochs=3)
        for i, node in enumerate(nodes):
            submit_texts(node, [f"coupled-{i}-{k}" for k in range(2)])
        network.start()
        network.run()
        assert_identical_ledgers(nodes)
        assert nodes[0].ledger.num_transactions == 8

    def test_coupled_config_forced(self, params4):
        network, nodes = build_cluster(DLCoupledNode, params4, max_epochs=1)
        assert all(node.config.coupled for node in nodes)


def _crashed_factory():
    """Adapter so CrashedNode can be constructed with the node-cluster signature."""

    def factory(node_id, params, ctx, **kwargs):
        return CrashedNode(node_id)

    return factory
