"""Fig. 15 (Appendix A.2) — throughput on the second (Vultr-like) testbed.

Paper shape to reproduce: on a lower-capacity, noisier 15-city provider
DispersedLedger still improves mean throughput by at least ~50% over
HoneyBadger, confirming that the Fig. 8 result is not an artefact of one
particular testbed.
"""

from conftest import bench_duration, fmt_mbps, report

from repro.experiments.geo import run_vultr_throughput


def test_fig15_vultr_throughput(benchmark):
    # The Vultr-like sites are slow relative to an epoch's data volume, so
    # give this run a little more virtual time than the AWS-like one to keep
    # whole-epoch quantisation of the slowest sites out of the mean.
    duration = max(20.0, bench_duration(1.5))

    def run():
        return run_vultr_throughput(duration=duration, protocols=("dl", "hb-link", "hb"))

    geo = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["", f"=== Fig. 15: Vultr-like testbed throughput ({duration:.0f}s virtual) ==="]
    header = f"{'city':<14}" + "".join(f"{p:>14}" for p in geo.results)
    lines.append(header)
    for row in geo.throughput_table():
        lines.append(
            f"{row['city']:<14}" + "".join(f"{fmt_mbps(row[p]):>14}" for p in geo.results)
        )
    means = geo.mean_throughputs()
    lines.append(f"{'MEAN':<14}" + "".join(f"{fmt_mbps(means[p]):>14}" for p in geo.results))
    lines.append(
        "DL improvement over HB: %+.0f%% (paper: at least +50%%)"
        % (100 * geo.improvement_over("dl", "hb"))
    )
    report(*lines)

    # Shape checks: DL's decoupling lets its fast sites outrun anything
    # HoneyBadger allows, and its mean is at least on par with (short runs)
    # or above (longer runs) HoneyBadger's lockstep mean.
    assert geo.results["dl"].max_throughput > geo.results["hb"].max_throughput
    assert geo.results["dl"].mean_throughput >= 0.9 * geo.results["hb"].mean_throughput
    assert geo.results["hb-link"].mean_throughput >= 0.95 * geo.results["hb"].mean_throughput
