"""Fig. 11a — throughput under spatial bandwidth variation.

16 nodes, node i capped at 10 + 0.5i MB/s, 100 ms links.  Paper shape to
reproduce: HoneyBadger (with or without linking) is capped near the
bandwidth of the (f+1)-th slowest server for every node, while
DispersedLedger's per-node throughput is roughly proportional to that
node's own capacity.
"""

from conftest import bench_duration, fmt_mbps, report

from repro.experiments.controlled import run_spatial_variation


def test_fig11a_spatial_variation(benchmark):
    duration = bench_duration()

    def run():
        return run_spatial_variation(
            num_nodes=16, duration=duration, protocols=("dl", "hb-link", "hb")
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["", f"=== Fig. 11a: spatial bandwidth variation ({duration:.0f}s virtual) ==="]
    lines.append(f"{'node':>4} {'capacity':>12} {'dl':>12} {'hb-link':>12} {'hb':>12}")
    for row in result.table():
        lines.append(
            f"{row['node']:>4} {fmt_mbps(row['capacity']):>12} {fmt_mbps(row['dl']):>12} "
            f"{fmt_mbps(row['hb-link']):>12} {fmt_mbps(row['hb']):>12}"
        )
    lines.append(
        "per-node max/min spread: dl %.2fx, hb-link %.2fx, hb %.2fx "
        "(paper: DL proportional to capacity, HB flat)"
        % (
            result.throughput_spread("dl"),
            result.throughput_spread("hb-link"),
            result.throughput_spread("hb"),
        )
    )
    report(*lines)

    # DL spreads with capacity; HB stays (nearly) flat across nodes.
    assert result.throughput_spread("dl") > 1.25
    assert result.throughput_spread("hb") < 1.35
    # DL's fastest nodes exceed what HoneyBadger allows anyone.
    assert max(result.results["dl"].throughputs) > max(result.results["hb"].throughputs)
