"""Checkpointing-cost report: plain-path speed, save/load cost, overhead.

Four measurements, appended to ``benchmarks/BENCH_snapshot.json`` so the
perf trajectory shows what snapshotability costs the hot path:

* **plain** — one ``trace-replay-wan`` point with checkpointing *disabled*;
  reported as simulator events/second.  This is the number the < 5 %
  regression budget for the snapshot refactor is judged against.
* **checkpointed** — the same point with ``checkpoint_every`` set so several
  checkpoints land mid-run; reports events/second, the wall-clock overhead
  ratio vs the plain run, and asserts the summary stays bit-identical.
* **save/load** — explicit ``save_checkpoint``/``load_checkpoint`` of a
  mid-run state: file size, save seconds, load seconds.
* **resume** — continue the loaded state to completion and assert the
  summary matches the uninterrupted run bit-for-bit.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_snapshot_report.py [--smoke]

``--smoke`` (CI) shortens the run and skips the JSON append.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.experiments.catalog import get_scenario
from repro.experiments.engine import run_scenario
from repro.experiments.options import ExecutionOptions
from repro.experiments.runner import build_experiment, resume_experiment
from repro.experiments.scenario import build_network_config
from repro.sim.snapshot import load_checkpoint, save_checkpoint

OUTPUT_PATH = Path(__file__).parent / "BENCH_snapshot.json"
SCENARIO = "trace-replay-wan"


def _spec(duration: float):
    return replace(get_scenario(SCENARIO).base, duration=duration)


def measure(duration: float, checkpoints: int) -> dict:
    spec = _spec(duration)

    plain_started = time.perf_counter()
    plain = run_scenario(spec)
    plain_seconds = time.perf_counter() - plain_started
    events = plain.result.events_processed

    with tempfile.TemporaryDirectory() as tmp:
        ckpt_path = Path(tmp) / "bench.ckpt"
        ckpt_spec = replace(spec, checkpoint_every=duration / checkpoints)
        ckpt_started = time.perf_counter()
        checkpointed = run_scenario(ckpt_spec, options=ExecutionOptions(checkpoint_path=ckpt_path))
        ckpt_seconds = time.perf_counter() - ckpt_started
        checkpoint_bytes = ckpt_path.stat().st_size

        if plain.summary() != checkpointed.summary():
            raise RuntimeError("periodic checkpointing changed the scenario summary")

        # Explicit save/load of a mid-run state, timed in isolation.
        state = build_experiment(
            spec.protocol,
            build_network_config(spec),
            spec.duration,
            workload=spec.workload,
            node_config=spec.node,
            params=spec.params(),
            seed=spec.seed,
            warmup=spec.effective_warmup(),
            adversary=spec.adversary,
            max_epochs=spec.max_epochs,
            meta={"spec": spec.to_dict(), "overrides": {}},
        )
        state.sim.run(until=duration * 0.5)
        mid_path = Path(tmp) / "mid.ckpt"
        save_started = time.perf_counter()
        save_checkpoint(mid_path, state)
        save_seconds = time.perf_counter() - save_started
        load_started = time.perf_counter()
        restored = load_checkpoint(mid_path)
        load_seconds = time.perf_counter() - load_started

        _state, resumed = resume_experiment(restored)
        if plain.result.events_processed != resumed.events_processed:
            raise RuntimeError("resumed run diverged from the uninterrupted run")

    return {
        "scenario": SCENARIO,
        "duration": duration,
        "events_processed": events,
        "plain_seconds": plain_seconds,
        "plain_events_per_second": events / plain_seconds if plain_seconds else 0.0,
        "checkpointed_seconds": ckpt_seconds,
        "checkpointed_events_per_second": (
            events / ckpt_seconds if ckpt_seconds else 0.0
        ),
        "checkpoint_overhead": ckpt_seconds / plain_seconds if plain_seconds else 0.0,
        "checkpoints_requested": checkpoints,
        "checkpoint_bytes": checkpoint_bytes,
        "save_seconds": save_seconds,
        "load_seconds": load_seconds,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Checkpointing-cost report")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced pass for CI (short run); no JSON append",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        entry = measure(duration=4.0, checkpoints=4)
    else:
        entry = measure(duration=15.0, checkpoints=6)
        history: list[dict] = []
        if OUTPUT_PATH.exists():
            history = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
        history.append(entry)
        OUTPUT_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
        print(f"appended entry #{len(history)} to {OUTPUT_PATH}")
    print(
        f"plain: {entry['duration']:g}s virtual in {entry['plain_seconds']:.2f}s "
        f"({entry['plain_events_per_second']:,.0f} events/s)"
    )
    print(
        f"checkpointed: x{entry['checkpoint_overhead']:.3f} wall, "
        f"{entry['checkpoint_bytes'] / 1e6:.2f} MB/checkpoint, "
        f"save {entry['save_seconds'] * 1e3:.1f} ms, "
        f"load {entry['load_seconds'] * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
