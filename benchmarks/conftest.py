"""Shared infrastructure for the figure-regenerating benchmarks.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (see DESIGN.md for the index).  The simulated durations
default to values short enough that the whole suite finishes in minutes;
set ``REPRO_BENCH_DURATION`` (seconds of virtual time) for longer, smoother
runs closer to the paper's 2+ minute measurements.

Results are printed through :func:`report`, which bypasses pytest's output
capture so the tables appear in ``bench_output.txt``, and are also appended
to ``benchmarks/results.txt``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

#: Default virtual duration (seconds) of the heavier WAN simulations.
DEFAULT_DURATION = float(os.environ.get("REPRO_BENCH_DURATION", "15"))
#: Where the printed tables are also archived.
RESULTS_PATH = Path(__file__).parent / "results.txt"

MB = 1_000_000.0


def bench_duration(scale: float = 1.0) -> float:
    """Virtual seconds to simulate for one run (scaled per experiment)."""
    return DEFAULT_DURATION * scale


def report(*lines: str) -> None:
    """Print result lines past pytest's capture and archive them."""
    text = "\n".join(lines)
    print(text, file=sys.__stdout__, flush=True)
    with RESULTS_PATH.open("a", encoding="utf-8") as handle:
        handle.write(text + "\n")


def fmt_mbps(value: float) -> str:
    """Format a bytes/second value as MB/s with two decimals."""
    return f"{value / MB:6.2f} MB/s"


def fmt_ms(value: float | None) -> str:
    """Format a seconds value as milliseconds."""
    return "   n/a" if value is None else f"{value * 1e3:6.0f} ms"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """Start each benchmark session with a clean results archive."""
    if RESULTS_PATH.exists():
        RESULTS_PATH.unlink()
    yield
