"""Fig. 12 — throughput at different cluster sizes and block sizes.

Paper shape to reproduce: growing the cluster from 16 to 128 nodes costs
only a modest amount of throughput (the O(N^2) agreement overhead eats into
a constant-sized block), and larger blocks amortise the fixed cost better.

The 16..128 sweep uses the byte-accurate cost model; the N = 16 point is
also measured with the message-level simulator to validate the model (the
pure-Python event loop cannot run N = 128 in reasonable time — see
DESIGN.md).
"""

from conftest import bench_duration, fmt_mbps, report

from repro.experiments.scalability import model_sweep, validate_cost_model


def test_fig12_throughput_vs_cluster_size(benchmark):
    # The validation run needs enough virtual time to amortise the first
    # epochs' ramp-up, since the analytic model describes the steady state.
    duration = max(25.0, bench_duration(2.0))

    def run():
        points = model_sweep(cluster_sizes=(16, 32, 64, 128), block_sizes=(500_000, 1_000_000))
        validation = validate_cost_model(n=16, block_size=500_000, duration=duration)
        return points, validation

    points, validation = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["", "=== Fig. 12: throughput vs cluster size (cost model; N=16 validated by simulation) ==="]
    lines.append(f"{'N':>5} {'block':>10} {'throughput':>14}")
    for point in points:
        lines.append(f"{point.n:>5} {point.block_size:>10} {fmt_mbps(point.throughput):>14}")
    lines.append(
        f"model validation at N=16, 500 KB: simulated {fmt_mbps(validation.simulated_throughput)}"
        f" vs modelled {fmt_mbps(validation.modelled_throughput)}"
        f" (ratio {validation.throughput_ratio:.2f})"
    )
    report(*lines)

    by_key = {(p.n, p.block_size): p for p in points}
    # Throughput at N=128 is within a modest factor of N=16 (only a slight drop).
    for block in (500_000, 1_000_000):
        assert by_key[(128, block)].throughput > 0.5 * by_key[(16, block)].throughput
        assert by_key[(128, block)].throughput <= 1.05 * by_key[(16, block)].throughput
    # Bigger blocks never hurt.
    assert by_key[(128, 1_000_000)].throughput >= by_key[(128, 500_000)].throughput
    # The model is a steady-state ceiling: the (ramp-up-including) simulation
    # lands below it but within a small factor.
    assert 0.25 < validation.throughput_ratio <= 1.2
