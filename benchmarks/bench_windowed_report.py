"""Windowed-execution report: shared-prefix sweep speedup vs monolithic.

One measurement, appended to ``benchmarks/BENCH_windowed.json``: a four-point
warmup-only sweep — the best case for the shared-prefix checkpoint tree,
since warmup acts only at summary time and the points agree on every window
boundary — run three ways over the same grid:

* **monolithic sequential** — ``sweep(..., parallel=False)``, the baseline
  every speedup is judged against;
* **windowed parallel** — ``windows=W, workers=4``: the leader runs the
  shared prefix once, the three followers fork its deepest checkpoint and
  simulate only the final window each (``1 + 3/W`` monolithic units of
  work instead of 4);
* **windowed serial** — same plan on one worker, isolating the prefix-tree
  savings from process scheduling.

Summaries of all three runs are asserted byte-identical before any number
is reported, and the entry records the acceptance floor: windowed parallel
must beat monolithic sequential by >= 1.5x.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_windowed_report.py [--smoke]

``--smoke`` (CI) shortens the horizon, skips the floor check, and writes its
entry to ``./BENCH_windowed.json`` (uploaded as an artifact) instead of
appending to the committed trajectory.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.config import NodeConfig
from repro.experiments.engine import sweep
from repro.experiments.options import ExecutionOptions
from repro.experiments.runner import WorkloadSpec
from repro.experiments.scenario import BandwidthSpec, ScenarioSpec, TopologySpec

OUTPUT_PATH = Path(__file__).parent / "BENCH_windowed.json"
MB = 1_000_000.0
SPEEDUP_FLOOR = 1.5


def _base(duration: float) -> ScenarioSpec:
    return ScenarioSpec(
        name="windowed-bench",
        topology=TopologySpec(kind="uniform", num_nodes=10, delay=0.05),
        bandwidth=BandwidthSpec(kind="constant", rate=2 * MB),
        workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=50_000.0),
        node=NodeConfig(max_block_size=10_000, nagle_size=10_000),
        duration=duration,
        warmup_fraction=0.0,
    )


def measure(duration: float, windows: int, workers: int) -> dict:
    base = _base(duration)
    # Four warmup points: summary-time-only knobs, so the prefix tree shares
    # every window but the last across all of them.
    grid = {"warmup": tuple(duration * f for f in (0.125, 0.25, 0.375, 0.5))}

    mono_started = time.perf_counter()
    mono = sweep(base, grid, options=ExecutionOptions(parallel=False))
    mono_seconds = time.perf_counter() - mono_started

    par_started = time.perf_counter()
    par = sweep(
        base, grid, options=ExecutionOptions(windows=windows, workers=workers)
    )
    par_seconds = time.perf_counter() - par_started

    serial_started = time.perf_counter()
    serial = sweep(
        base, grid, options=ExecutionOptions(parallel=False, windows=windows)
    )
    serial_seconds = time.perf_counter() - serial_started

    if par.summaries() != mono.summaries():
        raise RuntimeError("windowed parallel sweep diverged from monolithic")
    if serial.summaries() != mono.summaries():
        raise RuntimeError("windowed serial sweep diverged from monolithic")

    return {
        "scenario": "windowed-bench",
        "duration": duration,
        "points": len(mono.points),
        "windows": windows,
        "workers": workers,
        "events_processed": sum(p.result.events_processed for p in mono.points),
        "monolithic_seconds": mono_seconds,
        "windowed_parallel_seconds": par_seconds,
        "windowed_serial_seconds": serial_seconds,
        "parallel_speedup": mono_seconds / par_seconds if par_seconds else 0.0,
        "serial_speedup": mono_seconds / serial_seconds if serial_seconds else 0.0,
        "speedup_floor": SPEEDUP_FLOOR,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Windowed-execution report")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced pass for CI (short horizon): no floor check, writes the "
        "entry to ./BENCH_windowed.json instead of the benchmarks/ trajectory",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        entry = measure(duration=4.0, windows=4, workers=2)
        # CI uploads this from the working directory; the committed
        # trajectory under benchmarks/ is never touched by smoke runs.
        smoke_path = Path("BENCH_windowed.json")
        smoke_path.write_text(json.dumps([entry], indent=2) + "\n", encoding="utf-8")
        print(f"wrote smoke entry to {smoke_path}")
    else:
        entry = measure(duration=16.0, windows=8, workers=4)
        if entry["parallel_speedup"] < SPEEDUP_FLOOR:
            raise RuntimeError(
                f"windowed parallel speedup {entry['parallel_speedup']:.2f}x is "
                f"below the {SPEEDUP_FLOOR}x floor"
            )
        history: list[dict] = []
        if OUTPUT_PATH.exists():
            history = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
        history.append(entry)
        OUTPUT_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
        print(f"appended entry #{len(history)} to {OUTPUT_PATH}")
    print(
        f"{entry['points']}-point warmup sweep, {entry['duration']:g}s horizon, "
        f"W={entry['windows']}: monolithic {entry['monolithic_seconds']:.2f}s"
    )
    print(
        f"windowed parallel ({entry['workers']} workers): "
        f"{entry['windowed_parallel_seconds']:.2f}s "
        f"({entry['parallel_speedup']:.2f}x), serial: "
        f"{entry['windowed_serial_seconds']:.2f}s "
        f"({entry['serial_speedup']:.2f}x)"
    )


if __name__ == "__main__":
    main()
