"""Micro-benchmarks of the substrates the protocols are built on.

These are conventional pytest-benchmark measurements (multiple rounds) of
the hot paths: Reed-Solomon encoding/decoding, Merkle tree construction and
proof verification, and a complete AVID-M dispersal + retrieval on the
instant router.  They are not paper figures, but they document where the
reproduction's CPU time goes and guard against performance regressions.
"""

import pytest

from repro.common.params import ProtocolParams
from repro.crypto.merkle import MerkleTree, verify_proof
from repro.erasure.rs_code import ReedSolomonCode

BLOCK_SIZE = 250_000


@pytest.fixture(scope="module")
def params16():
    return ProtocolParams.for_n(16)


def test_reed_solomon_encode_250kb(benchmark, params16):
    code = ReedSolomonCode(params16.data_shards, params16.total_shards)
    block = bytes(range(256)) * (BLOCK_SIZE // 256)
    shards = benchmark(code.encode, block)
    assert len(shards) == 16


def test_reed_solomon_decode_250kb(benchmark, params16):
    code = ReedSolomonCode(params16.data_shards, params16.total_shards)
    block = bytes(range(256)) * (BLOCK_SIZE // 256)
    shards = code.encode(block)
    # Decode from the parity half to force actual matrix inversion work.
    subset = {i: shards[i] for i in range(16 - params16.data_shards, 16)}
    decoded = benchmark(code.decode, subset)
    assert decoded == block


def test_reed_solomon_decode_systematic_fast_path(benchmark, params16):
    code = ReedSolomonCode(params16.data_shards, params16.total_shards)
    block = bytes(range(256)) * (BLOCK_SIZE // 256)
    shards = code.encode(block)
    # The first k shards are systematic: decoding skips the kernel entirely.
    subset = {i: shards[i] for i in range(params16.data_shards)}
    decoded = benchmark(code.decode, subset)
    assert decoded == block


def test_reed_solomon_encode_many_8x250kb(benchmark, params16):
    code = ReedSolomonCode(params16.data_shards, params16.total_shards)
    blocks = [bytes([b % 256]) * BLOCK_SIZE for b in range(8)]
    batched = benchmark(code.encode_many, blocks)
    assert len(batched) == 8 and all(len(s) == 16 for s in batched)


def test_merkle_proofs_all_16_leaves(benchmark, params16):
    code = ReedSolomonCode(params16.data_shards, params16.total_shards)
    tree = MerkleTree(code.encode(bytes(BLOCK_SIZE)))
    proofs = benchmark(tree.proofs_all)
    assert len(proofs) == 16


def test_merkle_tree_build_16_leaves(benchmark, params16):
    code = ReedSolomonCode(params16.data_shards, params16.total_shards)
    shards = code.encode(bytes(BLOCK_SIZE))
    tree = benchmark(MerkleTree, shards)
    assert tree.num_leaves == 16


def test_merkle_proof_verification(benchmark):
    leaves = [bytes([i]) * 64 for i in range(128)]
    tree = MerkleTree(leaves)
    proof = tree.proof(77)
    assert benchmark(verify_proof, tree.root, leaves[77], proof)


def test_avid_m_full_dispersal_and_retrieval(benchmark):
    """One complete dispersal + one retrieval of a 100 KB block at N = 16."""
    from repro.experiments.fig02 import measure_avid_m_dispersal_cost

    cost = benchmark.pedantic(
        measure_avid_m_dispersal_cost, args=(16, 100_000), rounds=3, iterations=1
    )
    assert cost > 0


def test_binary_agreement_round(benchmark):
    """All 7 nodes of a cluster deciding one unanimous BA instance."""
    from repro.ba.coin import CommonCoin
    from repro.ba.mmr import BinaryAgreement
    from repro.common.ids import BAInstanceId
    from repro.sim.context import NodeContext
    from repro.sim.instant import InstantNetwork

    def run():
        params = ProtocolParams.for_n(7)
        network = InstantNetwork(7)
        coin = CommonCoin()
        outputs = {}
        instances = []
        for node_id in range(7):
            ctx = NodeContext(node_id, network, network)
            ba = BinaryAgreement(
                params=params,
                instance=BAInstanceId(epoch=1, slot=0),
                ctx=ctx,
                coin=coin,
                on_output=lambda _id, value, node_id=node_id: outputs.__setitem__(node_id, value),
            )
            instances.append(ba)

            class _Adapter:
                def __init__(self, ba):
                    self.ba = ba

                def start(self):
                    return

                def on_message(self, src, msg):
                    self.ba.handle(src, msg)

            network.attach(node_id, _Adapter(ba))
        for ba in instances:
            ba.input(1)
        network.run()
        return outputs

    outputs = benchmark.pedantic(run, rounds=5, iterations=1)
    assert set(outputs.values()) == {1}
