"""Fig. 10 — median/tail confirmation latency vs offered load (DL vs HB).

Paper shape to reproduce: at low load both protocols confirm in well under a
second; as the load grows HoneyBadger's median latency climbs steeply
(proposing and confirming are lockstep, so blocks — and epochs — keep
growing), while DispersedLedger's stays nearly flat, at both a
well-connected server (Ohio) and a poorly-connected one (Mumbai).
"""

from conftest import bench_duration, fmt_ms, report

from repro.experiments.latency import FAST_CITY, SLOW_CITY, city_index, run_latency_sweep
from repro.workload.cities import AWS_CITIES


def test_fig10_latency_vs_load(benchmark):
    duration = max(20.0, bench_duration(1.5))
    # Per-node offered load: the low point is comfortably inside every
    # protocol's capacity; the high point is near DispersedLedger's capacity
    # and beyond HoneyBadger's (which is where the paper's curves diverge).
    loads = (300_000.0, 1_000_000.0)

    def run():
        return run_latency_sweep(
            loads=loads, protocols=("dl", "hb"), duration=duration, warmup=duration * 0.25
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    fast = city_index(AWS_CITIES, FAST_CITY)
    slow = city_index(AWS_CITIES, SLOW_CITY)
    lines = ["", f"=== Fig. 10: latency vs per-node offered load ({duration:.0f}s virtual) ==="]
    lines.append(f"{'protocol':>9} {'load':>12} {'Ohio p50':>10} {'Ohio p95':>10} {'Mumbai p50':>11} {'Mumbai p95':>11}")
    for protocol, points in sweep.points.items():
        for point in points:
            lines.append(
                f"{protocol:>9} {point.load_bytes_per_second/1e6:>10.1f}MB"
                f" {fmt_ms(point.median_at(fast)):>10}"
                f" {fmt_ms(point.tail_at(fast, 'p95')):>10}"
                f" {fmt_ms(point.median_at(slow)):>11}"
                f" {fmt_ms(point.tail_at(slow, 'p95')):>11}"
            )
    report(*lines)

    dl_points = sweep.points["dl"]
    hb_points = sweep.points["hb"]
    dl_growth = (dl_points[-1].median_at(fast) or 0) / max(dl_points[0].median_at(fast) or 1e-9, 1e-9)
    hb_growth = (hb_points[-1].median_at(fast) or 0) / max(hb_points[0].median_at(fast) or 1e-9, 1e-9)
    # HoneyBadger's latency grows with load at least as fast as DL's, and DL
    # stays cheaper than HB at the highest load.
    assert (dl_points[-1].median_at(fast) or 0) <= (hb_points[-1].median_at(fast) or float("inf"))
    assert dl_growth <= hb_growth * 1.25
    benchmark.extra_info["dl_median_growth"] = dl_growth
    benchmark.extra_info["hb_median_growth"] = hb_growth
