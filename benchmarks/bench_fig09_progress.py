"""Fig. 9 — confirmed bytes over time, per server (DL vs HB-Link).

Paper shape to reproduce: with DispersedLedger every server advances at its
own pace (the per-server curves fan out), while with HoneyBadger-Link all
servers progress along nearly the same, slower curve.
"""

from conftest import bench_duration, report

from repro.experiments.geo import progress_timelines, run_geo_throughput


def _final(timeline):
    return timeline[-1][1] if timeline else 0


def test_fig09_progress_timelines(benchmark):
    duration = bench_duration()

    def run():
        geo = run_geo_throughput(
            duration=duration, protocols=("dl", "hb-link"), max_block_size=2_000_000
        )
        return geo, progress_timelines(geo, protocols=("dl", "hb-link"))

    geo, timelines = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["", f"=== Fig. 9: confirmed data over time ({duration:.0f}s virtual) ==="]
    for protocol, per_node in timelines.items():
        finals = [_final(t) for t in per_node]
        spread = (max(finals) - min(finals)) / 1e6
        lines.append(
            f"{protocol:>8}: final confirmed per server "
            f"min={min(finals)/1e6:.1f} MB  max={max(finals)/1e6:.1f} MB  spread={spread:.1f} MB"
        )
        # A coarse rendition of the figure: totals at quarters of the run.
        for quarter in (0.25, 0.5, 0.75, 1.0):
            cutoff = duration * quarter
            at_cutoff = [
                max((bytes_ for t, bytes_ in timeline if t <= cutoff), default=0)
                for timeline in per_node
            ]
            lines.append(
                f"          t={cutoff:5.1f}s  mean={sum(at_cutoff)/len(at_cutoff)/1e6:7.1f} MB  "
                f"min={min(at_cutoff)/1e6:7.1f}  max={max(at_cutoff)/1e6:7.1f}"
            )
    report(*lines)

    dl_finals = [_final(t) for t in timelines["dl"]]
    hb_finals = [_final(t) for t in timelines["hb-link"]]
    # DL servers fan out (decoupled); HB-Link servers bunch together.
    assert (max(dl_finals) - min(dl_finals)) > (max(hb_finals) - min(hb_finals))
    # Every DL server should confirm at least as much as the HB-Link pace
    # would eventually allow the fastest server (paper: "every node makes
    # more progress with DispersedLedger"), checked loosely on the mean.
    assert sum(dl_finals) >= sum(hb_finals)
