"""Adversary-scenario report: simulator cost and protocol impact of faults.

Runs a pinned fault matrix through the scenario engine — the same n = 7
cluster under no faults, crashes, censorship and equivocation — and appends
events-per-second plus the adversary-facing summary metrics to
``benchmarks/BENCH_adversary.json``, so the perf trajectory also covers the
Byzantine paths (node-class adversaries rebuild the node and run extra
protocol logic; a regression there is invisible to the fault-free reports).
Run standalone:

    PYTHONPATH=src python benchmarks/bench_adversary_report.py

The report also re-asserts the behavioural invariants the suite pins
(equivocation detected in epoch 1, censored blocks still delivered), so a
smoke pass in CI fails loudly if an optimisation breaks the adversary paths.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.adversary.registry import AdversarySpec
from repro.core.config import NodeConfig
from repro.experiments.engine import sweep
from repro.experiments.options import ExecutionOptions
from repro.experiments.runner import WorkloadSpec
from repro.experiments.scenario import BandwidthSpec, ScenarioSpec, TopologySpec
from repro.workload.traces import MB

OUTPUT_PATH = Path(__file__).parent / "BENCH_adversary.json"

#: The pinned matrix base: the `latency-fault-matrix` cluster shape.
BASE = ScenarioSpec(
    name="bench-adversary",
    protocol="dl",
    topology=TopologySpec(kind="uniform", num_nodes=7, delay=0.05),
    bandwidth=BandwidthSpec(kind="constant", rate=5 * MB),
    workload=WorkloadSpec(kind="poisson", rate_bytes_per_second=1_000_000.0),
    node=NodeConfig(max_block_size=500_000),
    duration=10.0,
)
FAULTS = (
    {"adversary.kind": "none", "adversary.count": 0},
    {"adversary.kind": "crash", "adversary.count": 2},
    {"adversary.kind": "censor", "adversary.count": 2},
    {"adversary.kind": "equivocate", "adversary.count": 1},
)


def run_report(base: ScenarioSpec = BASE) -> dict:
    started = time.perf_counter()
    result = sweep(base, {"faults": FAULTS}, options=ExecutionOptions(parallel=False))
    seconds = time.perf_counter() - started
    summaries = result.summaries()

    by_kind = {s.get("adversary_kind", "none"): s for s in summaries}
    if by_kind["equivocate"]["equivocation_detected_epoch"] != 1:
        raise RuntimeError("equivocation no longer detected in its first epoch")
    if by_kind["censor"]["victim_commit_p50"] is None:
        raise RuntimeError("censored victim's transactions no longer commit")
    if by_kind["crash"]["delivered_epochs"] < 1:
        raise RuntimeError("honest nodes lost liveness under f crashes")

    events = result.events_processed
    return {
        "workload": {
            "scenario": base.name,
            "points": len(result.points),
            "num_nodes": base.topology.num_nodes,
            "duration": base.duration,
        },
        "cpus": os.cpu_count() or 1,
        "events_processed": events,
        "wall_clock_seconds": seconds,
        "events_per_second": events / seconds,
        "per_fault": {
            kind: {
                "mean_throughput": s["mean_throughput"],
                "mean_p50_latency": s["mean_p50_latency"],
                "delivered_epochs": s["delivered_epochs"],
                "events_processed": s["events_processed"],
            }
            for kind, s in by_kind.items()
        },
        "victim_commit_p50": by_kind["censor"]["victim_commit_p50"],
        "victim_inclusion_delay": by_kind["censor"]["victim_inclusion_delay"],
        "bad_uploader_deliveries": by_kind["equivocate"]["bad_uploader_deliveries"],
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Adversary-scenario report")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced matrix for CI (shorter duration); no JSON append",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        entry = run_report(replace(BASE, duration=3.0))
    else:
        entry = run_report()
        history: list[dict] = []
        if OUTPUT_PATH.exists():
            history = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
        history.append(entry)
        OUTPUT_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
        print(f"appended entry #{len(history)} to {OUTPUT_PATH}")
    throughputs = {
        kind: f"{stats['mean_throughput']:,.0f} B/s"
        for kind, stats in entry["per_fault"].items()
    }
    print(
        f"{entry['workload']['points']}-point fault matrix in "
        f"{entry['wall_clock_seconds']:.2f}s "
        f"({entry['events_per_second']:,.0f} events/s); throughput {throughputs}"
    )


if __name__ == "__main__":
    main()
