"""Fig. 14 (Appendix A.1) — all-transaction vs local-transaction latency.

Paper shape to reproduce: for DispersedLedger the two metrics agree (so
counting only local transactions does not flatter it); for HoneyBadger the
all-transaction tail latency at well-provisioned servers is *worse* than
the local-only metric, because stale transactions proposed by overloaded
servers drag it up — which is why the paper reports local-only latency.
"""

from conftest import bench_duration, fmt_ms, report

from repro.experiments.latency import run_latency_metric_comparison


def test_fig14_latency_metric_comparison(benchmark):
    duration = max(20.0, bench_duration(1.5))
    load = 2_000_000.0

    def run():
        return {
            protocol: run_latency_metric_comparison(
                protocol, load, duration=duration, warmup=duration * 0.25
            )
            for protocol in ("dl", "hb")
        }

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["", f"=== Fig. 14: latency metric comparison at {load/1e6:.0f} MB/s per node ==="]
    for protocol, comparison in comparisons.items():
        rows = comparison.table()
        local = [row["local_p50"] for row in rows if row["local_p50"] is not None]
        all_tx = [row["all_p50"] for row in rows if row["all_p50"] is not None]
        local_p95 = [row["local_p95"] for row in rows if row["local_p95"] is not None]
        all_p95 = [row["all_p95"] for row in rows if row["all_p95"] is not None]
        lines.append(
            f"{protocol:>4}: median latency local {fmt_ms(sum(local)/len(local))} vs all "
            f"{fmt_ms(sum(all_tx)/len(all_tx))}; p95 local {fmt_ms(max(local_p95))} vs all "
            f"{fmt_ms(max(all_p95))}"
        )
    lines.append("(paper: identical for DL; worse all-tx tails for HB's fast servers)")
    report(*lines)

    dl_rows = comparisons["dl"].table()
    dl_local = [r["local_p50"] for r in dl_rows if r["local_p50"] is not None]
    dl_all = [r["all_p50"] for r in dl_rows if r["all_p50"] is not None]
    # For DL the two metrics are close (choosing local-only is not flattering).
    assert abs(sum(dl_all) / len(dl_all) - sum(dl_local) / len(dl_local)) < 0.75 * (
        sum(dl_local) / len(dl_local)
    )
