"""Merge every ``benchmarks/BENCH_*.json`` into one trajectory table.

Each ``bench_*_report.py`` script appends one entry per invocation to its
own ``BENCH_<name>.json``, so the per-PR performance trajectory is
scattered across files with heterogeneous schemas (most are JSON lists;
``BENCH_substrates.json`` is a single dict).  This script flattens them all
into uniform rows — report name, entry number, dotted-path numeric metrics
— prints an aligned table with one headline metric per entry, and can write
the merged trajectory as JSON for plotting.

Run standalone::

    python benchmarks/aggregate.py [--dir benchmarks] [--json merged.json]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any

BENCH_DIR = Path(__file__).parent

#: Substrings tried in order to pick each entry's headline metric; the
#: first flattened key containing one of these wins.  Per-report speedups
#: and throughputs outrank raw second counts.
HEADLINE_PRIORITY = (
    "parallel_speedup",
    "speedup",
    "events_per_second",
    "throughput",
    "per_second",
    "seconds",
)


def load_entries(path: Path) -> list[dict[str, Any]]:
    """Normalise one BENCH file to a list of entry dicts."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(data, dict):
        return [data]
    if isinstance(data, list) and all(isinstance(item, dict) for item in data):
        return data
    raise ValueError(f"{path} is neither a JSON object nor a list of objects")


def flatten_metrics(entry: dict[str, Any], prefix: str = "") -> dict[str, float]:
    """Numeric scalars of ``entry``, nested dicts joined with dots."""
    metrics: dict[str, float] = {}
    for key, value in entry.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            metrics[dotted] = float(value)
        elif isinstance(value, dict):
            metrics.update(flatten_metrics(value, prefix=f"{dotted}."))
    return metrics


def headline_metric(metrics: dict[str, float]) -> tuple[str, float] | None:
    """The most interesting metric of an entry, by :data:`HEADLINE_PRIORITY`."""
    for needle in HEADLINE_PRIORITY:
        for key in sorted(metrics):
            if needle in key:
                return key, metrics[key]
    for key in sorted(metrics):
        return key, metrics[key]
    return None


def aggregate(bench_dir: Path) -> list[dict[str, Any]]:
    """One row per (report, entry) across every ``BENCH_*.json`` in ``bench_dir``."""
    rows: list[dict[str, Any]] = []
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        report = path.stem.removeprefix("BENCH_")
        for index, entry in enumerate(load_entries(path)):
            rows.append(
                {
                    "report": report,
                    "entry": index,
                    "metrics": flatten_metrics(entry),
                }
            )
    return rows


def render_table(rows: list[dict[str, Any]]) -> str:
    """The trajectory as an aligned text table, one line per entry."""
    lines = [f"{'report':<12} {'entry':>5}  {'headline metric':<44} {'value':>14}"]
    for row in rows:
        headline = headline_metric(row["metrics"])
        name, value = headline if headline else ("-", float("nan"))
        lines.append(
            f"{row['report']:<12} {row['entry']:>5}  {name:<44} {value:>14,.3f}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Merge benchmarks/BENCH_*.json into one trajectory table"
    )
    parser.add_argument(
        "--dir",
        type=Path,
        default=BENCH_DIR,
        help="directory holding the BENCH_*.json files (default: benchmarks/)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the merged rows as JSON to PATH",
    )
    args = parser.parse_args(argv)
    rows = aggregate(args.dir)
    if not rows:
        print(f"no BENCH_*.json files under {args.dir}")
        return 1
    print(render_table(rows))
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(rows, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {len(rows)} rows to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
