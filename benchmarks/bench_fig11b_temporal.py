"""Fig. 11b — throughput under temporal bandwidth variation.

16 nodes whose bandwidth follows independent Gauss-Markov processes
(b = 10 MB/s, sigma = 5 MB/s, alpha = 0.98) vs a fixed 10 MB/s control run.
Paper shape to reproduce: DispersedLedger's throughput is essentially
unchanged by the fluctuation, while HoneyBadger (with or without linking)
loses roughly 20-25%.
"""

from conftest import bench_duration, fmt_mbps, report

from repro.experiments.controlled import run_temporal_variation


def test_fig11b_temporal_variation(benchmark):
    duration = bench_duration()

    def run():
        return run_temporal_variation(
            num_nodes=16, duration=duration, protocols=("dl", "hb-link", "hb")
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["", f"=== Fig. 11b: temporal bandwidth variation ({duration:.0f}s virtual) ==="]
    lines.append(f"{'protocol':>9} {'fixed':>12} {'varying':>12} {'drop':>8}")
    for row in result.table():
        lines.append(
            f"{row['protocol']:>9} {fmt_mbps(row['fixed']):>12} {fmt_mbps(row['varying']):>12} "
            f"{100 * row['relative_drop']:>7.1f}%"
        )
    lines.append("(paper: DL ~0% drop, HB ~20%, HB-Link ~25%)")
    report(*lines)

    dl_drop = result.relative_drop("dl")
    hb_drop = result.relative_drop("hb")
    # Temporal variation hurts HoneyBadger more than DispersedLedger (the
    # tolerance absorbs run-to-run noise of the short benchmark runs).
    assert dl_drop < hb_drop + 0.08
    assert dl_drop < 0.30
    benchmark.extra_info["dl_drop"] = dl_drop
    benchmark.extra_info["hb_drop"] = hb_drop
