"""Transaction data-plane A/B report: object path vs columnar path.

Runs the same saturating express scenario through both data planes — the
per-transaction object path (``kind="saturating"`` + ``mempool="object"``)
and the struct-of-arrays columnar path (``kind="saturating-columnar"`` +
``mempool="columnar"``) — and appends the throughput comparison to
``benchmarks/BENCH_workload.json``.  Run standalone:

    PYTHONPATH=src python benchmarks/bench_workload_report.py

The A/B runs are **interleaved** (object, columnar, object, columnar, ...)
so a slow drift in machine load lands evenly on both variants instead of
biasing whichever ran second.  Every run executes in a fresh worker process
so ``ru_maxrss`` is a true per-run peak RSS — the monotone high-water mark
of a long-lived process would otherwise smear across runs.

``--scale`` additionally times the million-transaction flagship: the
N = 256 express cluster committing 256 x 4096 = 1,048,576 transactions in
one epoch, the acceptance scenario for the columnar data plane (budget:
under 10 minutes on one core).
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.core.config import NodeConfig
from repro.experiments.runner import WorkloadSpec
from repro.experiments.scenario import BandwidthSpec, ScenarioSpec, TopologySpec

OUTPUT_PATH = Path(__file__).parent / "BENCH_workload.json"

#: The two data planes under comparison: (workload kind, mempool kind).
VARIANTS = {
    "object": ("saturating", "object"),
    "columnar": ("saturating-columnar", "columnar"),
}


def variant_spec(
    variant: str,
    *,
    num_nodes: int,
    tx_size: int,
    block_bytes: int,
    seed: int = 1,
) -> ScenarioSpec:
    """One point of the A/B: identical cluster and load, different plane."""
    workload_kind, mempool = VARIANTS[variant]
    return ScenarioSpec(
        name=f"bench-workload-{variant}",
        protocol="dl",
        topology=TopologySpec(kind="uniform", num_nodes=num_nodes, delay=0.05, express=True),
        bandwidth=BandwidthSpec(kind="unlimited"),
        workload=WorkloadSpec(
            kind=workload_kind, target_pending_bytes=2 * block_bytes, tx_size=tx_size
        ),
        node=NodeConfig(mempool=mempool, max_block_size=block_bytes, nagle_size=block_bytes),
        duration=2.0,
        warmup=0.0,
        warmup_fraction=0.0,
        max_epochs=1,
        seed=seed,
    )


def _run_one(spec: ScenarioSpec) -> dict:
    """Worker-process body: run one spec, return its measurements + peak RSS."""
    from repro.experiments.engine import run_scenario

    started = time.perf_counter()
    result = run_scenario(spec).result
    wall = time.perf_counter() - started
    assert result is not None
    return {
        "wall_seconds": wall,
        "events_processed": result.events_processed,
        "tx_generated": result.tx_generated,
        "tx_committed": result.tx_committed,
        # Linux reports ru_maxrss in kilobytes.
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def run_report(*, num_nodes: int, tx_size: int, block_bytes: int, repeats: int) -> dict:
    # Interleave the variants and give every run a fresh process (one task
    # per child) so load drift and RSS high-water marks stay per-run.
    order = [name for _ in range(repeats) for name in VARIANTS]
    runs: dict[str, list[dict]] = {name: [] for name in VARIANTS}
    with ProcessPoolExecutor(max_workers=1, max_tasks_per_child=1) as pool:
        for name in order:
            spec = variant_spec(
                name, num_nodes=num_nodes, tx_size=tx_size, block_bytes=block_bytes
            )
            runs[name].append(pool.submit(_run_one, spec).result())

    variants = {}
    for name, samples in runs.items():
        wall = sum(sample["wall_seconds"] for sample in samples)
        generated = sum(sample["tx_generated"] for sample in samples)
        committed = sum(sample["tx_committed"] for sample in samples)
        variants[name] = {
            "runs": len(samples),
            "wall_seconds_mean": wall / len(samples),
            "events_processed": samples[0]["events_processed"],
            "tx_generated": samples[0]["tx_generated"],
            "tx_committed": samples[0]["tx_committed"],
            "tx_generated_per_s": generated / wall,
            "tx_committed_per_s": committed / wall,
            "peak_rss_mb": max(sample["peak_rss_kb"] for sample in samples) / 1024.0,
        }
    return {
        "workload": {
            "num_nodes": num_nodes,
            "tx_size": tx_size,
            "block_bytes": block_bytes,
            "tx_per_block": block_bytes // tx_size,
            "repeats": repeats,
        },
        "cpus": os.cpu_count() or 1,
        "variants": variants,
        "speedup": {
            "tx_generated_per_s": (
                variants["columnar"]["tx_generated_per_s"]
                / variants["object"]["tx_generated_per_s"]
            ),
            "tx_committed_per_s": (
                variants["columnar"]["tx_committed_per_s"]
                / variants["object"]["tx_committed_per_s"]
            ),
        },
    }


def run_scale(num_nodes: int = 256, tx_per_block: int = 4096, tx_size: int = 250) -> dict:
    """The million-transaction flagship, columnar plane only, in-process."""
    spec = variant_spec(
        "columnar",
        num_nodes=num_nodes,
        tx_size=tx_size,
        block_bytes=tx_per_block * tx_size,
    )
    with ProcessPoolExecutor(max_workers=1, max_tasks_per_child=1) as pool:
        sample = pool.submit(_run_one, spec).result()
    return {
        "num_nodes": num_nodes,
        "tx_committed": sample["tx_committed"],
        "wall_seconds": sample["wall_seconds"],
        "events_processed": sample["events_processed"],
        "events_per_second": sample["events_processed"] / sample["wall_seconds"],
        "tx_committed_per_s": sample["tx_committed"] / sample["wall_seconds"],
        "peak_rss_mb": sample["peak_rss_kb"] / 1024.0,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Transaction data-plane A/B report")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced A/B for CI (N=16, 1 repeat); writes BENCH_workload.json "
        "to the working directory instead of appending to the history",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="also time the million-transaction N=256 flagship (minutes)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        entry = run_report(num_nodes=4, tx_size=250, block_bytes=500_000, repeats=1)
        # CI uploads this single-entry report as a build artifact.
        Path("BENCH_workload.json").write_text(
            json.dumps(entry, indent=2) + "\n", encoding="utf-8"
        )
    else:
        # N = 4 keeps the consensus machinery cheap so the comparison is
        # data-plane-bound: 4 proposers x 20,000 transactions per 5 MB block.
        entry = run_report(num_nodes=4, tx_size=250, block_bytes=5_000_000, repeats=2)
        if args.scale:
            entry["scale"] = run_scale()
        history: list[dict] = []
        if OUTPUT_PATH.exists():
            history = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
        history.append(entry)
        OUTPUT_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
        print(f"appended entry #{len(history)} to {OUTPUT_PATH}")
    obj, col = entry["variants"]["object"], entry["variants"]["columnar"]
    print(
        f"object   {obj['wall_seconds_mean']:.2f}s/run, "
        f"{obj['tx_committed_per_s']:,.0f} tx committed/s, "
        f"{obj['peak_rss_mb']:.0f} MB peak RSS"
    )
    print(
        f"columnar {col['wall_seconds_mean']:.2f}s/run, "
        f"{col['tx_committed_per_s']:,.0f} tx committed/s, "
        f"{col['peak_rss_mb']:.0f} MB peak RSS"
    )
    print(
        f"speedup  {entry['speedup']['tx_generated_per_s']:.1f}x generated/s, "
        f"{entry['speedup']['tx_committed_per_s']:.1f}x committed/s"
    )
    if "scale" in entry:
        scale = entry["scale"]
        print(
            f"scale    N={scale['num_nodes']}: {scale['tx_committed']:,} tx in "
            f"{scale['wall_seconds']:.1f}s ({scale['events_per_second']:,.0f} events/s)"
        )


if __name__ == "__main__":
    main()
