"""Trace-subsystem report: parse/transform throughput, replay speed, telemetry cost.

Three measurements, appended to ``benchmarks/BENCH_trace.json`` so the perf
trajectory covers the trace layer alongside the coding substrate, scenario
engine and sim core:

* **parse/transform** — load + validate ``traces/wan-measured.csv``
  repeatedly (cache bypassed), resample it onto a 0.5 s grid and lower it
  to pipe bandwidth functions; reported as breakpoints/second.
* **replay** — one ``trace-replay-wan`` point through the scenario engine;
  reported as simulator events/second.
* **telemetry** — the same point with the :class:`~repro.trace.TraceRecorder`
  enabled (0.5 s sampling), asserting the summary stays bit-identical and
  reporting the recording overhead ratio and rows captured.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_trace_report.py [--smoke]

``--smoke`` (CI) shortens the runs and skips the JSON append.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.experiments.catalog import get_scenario
from repro.experiments.engine import run_scenario
from repro.trace import TelemetrySpec, load_trace, read_jsonl

OUTPUT_PATH = Path(__file__).parent / "BENCH_trace.json"
TRACE_PATH = "traces/wan-measured.csv"


def measure_parse(loops: int) -> dict:
    started = time.perf_counter()
    points = 0
    for _ in range(loops):
        trace = load_trace(TRACE_PATH)
        resampled = trace.resampled(0.5)
        trace.bandwidth_traces(resampled.num_nodes)
        points += trace.num_points + resampled.num_points
    seconds = time.perf_counter() - started
    return {
        "loops": loops,
        "seconds": seconds,
        "breakpoints": points,
        "breakpoints_per_second": points / seconds if seconds else 0.0,
    }


def measure_replay(duration: float) -> dict:
    spec = replace(get_scenario("trace-replay-wan").base, duration=duration)

    plain_started = time.perf_counter()
    plain = run_scenario(spec)
    plain_seconds = time.perf_counter() - plain_started

    with tempfile.TemporaryDirectory() as tmp:
        recorded_spec = replace(
            spec, telemetry=TelemetrySpec(enabled=True, interval=0.5, out_dir=tmp)
        )
        recorded_started = time.perf_counter()
        recorded = run_scenario(recorded_spec)
        recorded_seconds = time.perf_counter() - recorded_started
        rows = len(read_jsonl(recorded.telemetry_path))

    if plain.summary() != recorded.summary():
        raise RuntimeError("telemetry recording changed the scenario summary")

    events = plain.result.events_processed
    return {
        "scenario": spec.name,
        "duration": duration,
        "events_processed": events,
        "replay_seconds": plain_seconds,
        "replay_events_per_second": events / plain_seconds if plain_seconds else 0.0,
        "telemetry_seconds": recorded_seconds,
        "telemetry_overhead": (
            recorded_seconds / plain_seconds if plain_seconds else 0.0
        ),
        "telemetry_rows": rows,
    }


def run_report(parse_loops: int = 50, duration: float = 10.0) -> dict:
    return {"parse": measure_parse(parse_loops), "replay": measure_replay(duration)}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Trace-subsystem performance report")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced pass for CI (short replay, few parse loops); no JSON append",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        entry = run_report(parse_loops=5, duration=3.0)
    else:
        entry = run_report()
        history: list[dict] = []
        if OUTPUT_PATH.exists():
            history = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
        history.append(entry)
        OUTPUT_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
        print(f"appended entry #{len(history)} to {OUTPUT_PATH}")
    parse = entry["parse"]
    replay = entry["replay"]
    print(
        f"parse: {parse['loops']} loads of {TRACE_PATH} in {parse['seconds']:.2f}s "
        f"({parse['breakpoints_per_second']:,.0f} breakpoints/s)"
    )
    print(
        f"replay: {replay['duration']:g}s virtual in {replay['replay_seconds']:.2f}s "
        f"({replay['replay_events_per_second']:,.0f} events/s); telemetry x"
        f"{replay['telemetry_overhead']:.2f} wall ({replay['telemetry_rows']} rows)"
    )


if __name__ == "__main__":
    main()
