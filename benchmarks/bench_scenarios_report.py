"""Scenario-engine throughput report: simulator events/sec and sweep scaling.

Runs a small fixed 4-point sweep through the scenario engine twice — once
serially, once across worker processes — and appends wall-clock and
events-per-second numbers to ``benchmarks/BENCH_scenarios.json``, so the
perf trajectory tracked across PRs covers the simulation layer and not just
the coding substrate (``BENCH_substrates.json``).  Run standalone:

    PYTHONPATH=src python benchmarks/bench_scenarios_report.py

The workload is pinned (same specs, same seeds) so entries are comparable
across machines only via their events/sec ratio, and across PRs on the same
machine directly.  On a single-CPU box the parallel pass degenerates to one
worker and the speedup hovers around 1.0; the ``cpus`` field records that.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.core.config import NodeConfig
from repro.experiments.engine import sweep
from repro.experiments.options import ExecutionOptions
from repro.experiments.runner import WorkloadSpec
from repro.experiments.scenario import BandwidthSpec, ScenarioSpec, TopologySpec
from repro.workload.traces import MB

OUTPUT_PATH = Path(__file__).parent / "BENCH_scenarios.json"

#: The pinned sweep: 4 independent seeds of a 6-node constant-bandwidth run.
BASE = ScenarioSpec(
    name="bench-sweep",
    protocol="dl",
    topology=TopologySpec(kind="uniform", num_nodes=6, delay=0.05),
    bandwidth=BandwidthSpec(kind="constant", rate=4 * MB),
    workload=WorkloadSpec(kind="saturating", target_pending_bytes=2_000_000),
    node=NodeConfig(max_block_size=500_000),
    duration=10.0,
)
GRID = {"seed": (0, 1, 2, 3)}


def run_report(base: ScenarioSpec = BASE, grid: dict = GRID) -> dict:
    serial_started = time.perf_counter()
    serial = sweep(base, grid, options=ExecutionOptions(parallel=False))
    serial_seconds = time.perf_counter() - serial_started

    parallel_started = time.perf_counter()
    parallel = sweep(base, grid, options=ExecutionOptions(parallel=True))
    parallel_seconds = time.perf_counter() - parallel_started

    if serial.summaries() != parallel.summaries():
        raise RuntimeError("parallel sweep diverged from serial sweep")

    events = serial.events_processed
    return {
        "workload": {
            "scenario": base.name,
            "points": len(serial.points),
            "num_nodes": base.topology.num_nodes,
            "duration": base.duration,
        },
        "cpus": os.cpu_count() or 1,
        "workers": parallel.workers,
        "events_processed": events,
        "tx_generated": serial.tx_generated,
        "tx_committed": serial.tx_committed,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "parallel_speedup": serial_seconds / parallel_seconds,
        "serial_events_per_second": events / serial_seconds,
        "parallel_events_per_second": events / parallel_seconds,
        # Transactions per wall-clock second through the whole sweep — the
        # data-plane throughput figures the columnar work targets.
        "tx_generated_per_s": serial.tx_generated / serial_seconds,
        "tx_committed_per_s": serial.tx_committed / serial_seconds,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Scenario-engine throughput report")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep for CI (shorter duration, 2 points); no JSON append",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        entry = run_report(replace(BASE, duration=3.0), {"seed": (0, 1)})
    else:
        entry = run_report()
        history: list[dict] = []
        if OUTPUT_PATH.exists():
            history = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
        history.append(entry)
        OUTPUT_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
        print(f"appended entry #{len(history)} to {OUTPUT_PATH}")
    print(
        f"{entry['workload']['points']}-point sweep: "
        f"serial {entry['serial_seconds']:.2f}s "
        f"({entry['serial_events_per_second']:,.0f} events/s), "
        f"parallel {entry['parallel_seconds']:.2f}s on {entry['workers']} worker(s) "
        f"({entry['parallel_speedup']:.2f}x, {entry['cpus']} cpu(s))"
    )


if __name__ == "__main__":
    main()
