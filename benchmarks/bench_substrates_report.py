"""Substrate throughput report: Reed-Solomon, Merkle, and batch fast paths.

Times the coding-substrate hot paths with plain ``time.perf_counter`` loops
and writes ``benchmarks/BENCH_substrates.json`` so future PRs have a perf
trajectory to compare against.  Run standalone:

    PYTHONPATH=src python benchmarks/bench_substrates_report.py

To make the speedup numbers robust against machine-to-machine (and
container-noise) variation, the script embeds a faithful copy of the *seed*
implementation (PR 0: per-row Python loops over log/exp tables, per-call
matrix inversion, list-of-digests Merkle levels) and measures it in the same
process, so every ``speedup_vs_seed`` compares two medians taken seconds
apart on the same machine.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import statistics
import struct
import time
from pathlib import Path

import numpy as np

from repro.common.params import ProtocolParams
from repro.crypto.merkle import MerkleTree, verify_proof
from repro.erasure.gf256 import GF256
from repro.erasure.rs_code import ReedSolomonCode

N = 16
BLOCK_SIZE = 250_000
BATCH = 8
OUTPUT_PATH = Path(__file__).parent / "BENCH_substrates.json"

_LENGTH_HEADER = struct.Struct(">I")


# --------------------------------------------------------------------------
# Seed (PR 0) reference implementations, reproduced verbatim in behaviour:
# encode/decode ran the whole n x k matrix through a per-row Python loop with
# log-table lookups and np.where masking, decode inverted the sub-matrix on
# every call, and the Merkle tree hashed leaves one concatenation at a time.
# --------------------------------------------------------------------------


def _seed_mat_vec_rows(matrix: np.ndarray, data: np.ndarray) -> np.ndarray:
    exp_table, log_table = GF256.exp_table, GF256.log_table
    m, k = matrix.shape
    width = data.shape[1]
    out = np.zeros((m, width), dtype=np.uint8)
    data_logs = log_table[data]
    nonzero_mask = data != 0
    for row in range(m):
        acc = np.zeros(width, dtype=np.uint8)
        for col in range(k):
            coeff = int(matrix[row, col])
            if coeff == 0:
                continue
            if coeff == 1:
                acc ^= data[col]
                continue
            coeff_log = int(log_table[coeff])
            product = exp_table[data_logs[col] + coeff_log].astype(np.uint8)
            product = np.where(nonzero_mask[col], product, 0).astype(np.uint8)
            acc ^= product
        out[row] = acc
    return out


class _SeedReedSolomon:
    """Seed encode/decode on top of the seed kernel (no caching, no fast paths)."""

    def __init__(self, code: ReedSolomonCode):
        self._matrix = code._matrix
        self.data_shards = code.data_shards
        self.total_shards = code.total_shards
        self.shard_size = code.shard_size

    def encode(self, block: bytes) -> list[bytes]:
        shard_size = self.shard_size(len(block))
        padded = _LENGTH_HEADER.pack(len(block)) + block
        padded = padded.ljust(self.data_shards * shard_size, b"\x00")
        data = np.frombuffer(padded, dtype=np.uint8).reshape(self.data_shards, shard_size)
        coded = _seed_mat_vec_rows(self._matrix, data)
        return [coded[i].tobytes() for i in range(self.total_shards)]

    def decode(self, shards: dict[int, bytes]) -> bytes:
        indices = sorted(shards)[: self.data_shards]
        sub_matrix = self._matrix[indices, :]
        inverse = GF256.mat_inv(sub_matrix)
        stacked = np.stack([np.frombuffer(shards[i], dtype=np.uint8) for i in indices])
        data = _seed_mat_vec_rows(inverse, stacked)
        payload = data.tobytes()
        (length,) = _LENGTH_HEADER.unpack_from(payload)
        return payload[_LENGTH_HEADER.size : _LENGTH_HEADER.size + length]


class _SeedMerkleTree:
    def __init__(self, leaves: list[bytes]):
        leaf_prefix, node_prefix = b"\x00", b"\x01"
        empty = hashlib.sha256(leaf_prefix + b"\x00merkle-padding").digest()
        width = 1
        while width < len(leaves):
            width *= 2
        level = [hashlib.sha256(leaf_prefix + leaf).digest() for leaf in leaves]
        level.extend([empty] * (width - len(leaves)))
        self.levels = [level]
        while len(level) > 1:
            level = [
                hashlib.sha256(node_prefix + level[i] + level[i + 1]).digest()
                for i in range(0, len(level), 2)
            ]
            self.levels.append(level)
        self.root = self.levels[-1][0]


def _time(func, *, repeat: int = 30, warmup: int = 3) -> float:
    """Median seconds per call over ``repeat`` timed runs."""
    for _ in range(warmup):
        func()
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _compare(current, seed, *, repeat: int = 20) -> tuple[float, float]:
    """Median seconds of ``current`` and ``seed``, sampled interleaved.

    Alternating the two candidates sample by sample exposes both to the same
    ambient machine load (shared CI boxes fluctuate by tens of percent over
    seconds), so the ratio of the two medians is far more stable than timing
    one candidate after the other.
    """
    current()
    seed()
    current_samples, seed_samples = [], []
    for _ in range(repeat):
        start = time.perf_counter()
        current()
        current_samples.append(time.perf_counter() - start)
        start = time.perf_counter()
        seed()
        seed_samples.append(time.perf_counter() - start)
    return statistics.median(current_samples), statistics.median(seed_samples)


def run_report(repeat: int = 20, many_repeat: int = 5, fast_repeat: int = 100) -> dict:
    params = ProtocolParams.for_n(N)
    code = ReedSolomonCode(params.data_shards, params.total_shards)
    seed_code = _SeedReedSolomon(code)
    block = bytes(range(256)) * (BLOCK_SIZE // 256)
    shards = code.encode(block)
    assert seed_code.encode(block) == shards, "seed reference must be byte-identical"
    parity_subset = {i: shards[i] for i in range(N - params.data_shards, N)}
    systematic_subset = {i: shards[i] for i in range(params.data_shards)}
    blocks = [bytes([b % 256]) * BLOCK_SIZE for b in range(BATCH)]
    tree = MerkleTree(shards)
    proof = tree.proof(7)

    encode_now, encode_seed = _compare(
        lambda: code.encode(block), lambda: seed_code.encode(block), repeat=repeat
    )
    decode_now, decode_seed = _compare(
        lambda: code.decode(parity_subset),
        lambda: seed_code.decode(parity_subset),
        repeat=repeat,
    )
    sys_now, sys_seed = _compare(
        lambda: code.decode(systematic_subset),
        lambda: seed_code.decode(systematic_subset),
        repeat=repeat,
    )
    many_now, many_seed = _compare(
        lambda: code.encode_many(blocks),
        lambda: [seed_code.encode(b) for b in blocks],
        repeat=many_repeat,
    )
    merkle_now, merkle_seed = _compare(
        lambda: MerkleTree(shards), lambda: _SeedMerkleTree(shards), repeat=repeat
    )

    # (current_timing, payload_bytes, seed_timing_or_None)
    timings = {
        "rs_encode_250kb": (encode_now, BLOCK_SIZE, encode_seed),
        "rs_decode_parity_250kb": (decode_now, BLOCK_SIZE, decode_seed),
        "rs_decode_systematic_250kb": (sys_now, BLOCK_SIZE, sys_seed),
        "rs_encode_many_8x250kb": (many_now, BATCH * BLOCK_SIZE, many_seed),
        "merkle_build_16_leaves": (
            merkle_now,
            sum(len(s) for s in shards),
            merkle_seed,
        ),
        "merkle_proofs_all_16": (_time(tree.proofs_all, repeat=fast_repeat), None, None),
        "merkle_verify_proof": (
            _time(lambda: verify_proof(tree.root, shards[7], proof), repeat=fast_repeat),
            len(shards[7]),
            None,
        ),
    }

    operations = {}
    for name, (seconds, payload_bytes, seed_seconds) in timings.items():
        entry = {"median_seconds": seconds}
        if payload_bytes is not None:
            entry["throughput_mb_per_s"] = payload_bytes / seconds / 1e6
        if seed_seconds is not None:
            entry["seed_median_seconds"] = seed_seconds
            entry["speedup_vs_seed"] = seed_seconds / seconds
        operations[name] = entry

    return {
        "workload": {"n": N, "data_shards": params.data_shards, "block_size": BLOCK_SIZE},
        "operations": operations,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Coding-substrate throughput report")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="few-sample CI regression pass; does not rewrite the JSON report",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report = run_report(repeat=3, many_repeat=2, fast_repeat=10)
    else:
        report = run_report()
        OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {OUTPUT_PATH}")
    for name, entry in report["operations"].items():
        line = f"{name:32s} {entry['median_seconds'] * 1e3:8.3f} ms"
        if "throughput_mb_per_s" in entry:
            line += f"  {entry['throughput_mb_per_s']:8.1f} MB/s"
        if "speedup_vs_seed" in entry:
            line += f"  {entry['speedup_vs_seed']:5.1f}x vs seed"
        print(line)


if __name__ == "__main__":
    main()
