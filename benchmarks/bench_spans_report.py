"""Span-tracing overhead report: hooks off, spans on, profiler on.

The observability layer promises a near-free off switch: with no
:class:`~repro.trace.SpanRecorder` attached and no
:class:`~repro.sim.profiler.SimProfiler` installed, the only cost the
instrumentation adds to the hot paths is an ``is not None`` branch per
hook site.  This report pins that promise with an interleaved A/B/A'
measurement over one ``trace-replay-wan`` point:

* **off vs off** — the same both-layers-off configuration timed twice per
  repeat, interleaved, so the ratio is the honest noise floor of the
  off path (asserted < 1.05: the off switch costs nothing measurable);
* **spans on** — :class:`SpanRecorder` attached, reported as a wall-clock
  ratio against the off runs plus the span-row count;
* **profiler on** — :class:`SimProfiler` installed (every dispatch pays
  two clock reads), same ratio plus attributed events.

Every configuration must produce a bit-identical summary — behaviour
neutrality is re-asserted on each run, not assumed.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_spans_report.py [--smoke]

``--smoke`` (CI) shortens the run and writes a single-entry
``BENCH_spans.json`` to the working directory instead of appending to the
history in ``benchmarks/BENCH_spans.json``.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.experiments.catalog import get_scenario
from repro.experiments.engine import run_scenario
from repro.experiments.options import ExecutionOptions
from repro.sim.profiler import SimProfiler
from repro.trace import SpanSpec, read_jsonl

OUTPUT_PATH = Path(__file__).parent / "BENCH_spans.json"
SCENARIO = "trace-replay-wan"

#: The off-path overhead the report asserts (and the PR gate reads).
OFF_OVERHEAD_LIMIT = 1.05


def _timed_run(spec, profiler=None):
    started = time.perf_counter()
    result = run_scenario(spec, options=ExecutionOptions(profiler=profiler))
    return result, time.perf_counter() - started


def measure(duration: float, repeats: int) -> dict:
    base = replace(get_scenario(SCENARIO).base, duration=duration)
    seconds = {"off_a": [], "off_b": [], "spans": [], "profiler": []}
    span_rows = 0
    profiler_events = 0
    reference = None

    with tempfile.TemporaryDirectory() as tmp:
        span_spec = replace(base, spans=SpanSpec(enabled=True, out_dir=tmp))
        _timed_run(base)  # untimed warmup: imports, allocator, trace cache
        for _ in range(repeats):
            # Interleaved so drift (thermal, cache, scheduler) lands evenly
            # across configurations instead of biasing whichever ran last.
            off_a, t_off_a = _timed_run(base)
            spans, t_spans = _timed_run(span_spec)
            profiler = SimProfiler()
            profiled, t_prof = _timed_run(base, profiler=profiler)
            off_b, t_off_b = _timed_run(base)

            for result in (off_a, spans, profiled, off_b):
                summary = result.summary()
                if reference is None:
                    reference = summary
                elif summary != reference:
                    raise RuntimeError(
                        "span/profiler instrumentation changed the summary"
                    )
            seconds["off_a"].append(t_off_a)
            seconds["off_b"].append(t_off_b)
            seconds["spans"].append(t_spans)
            seconds["profiler"].append(t_prof)
            span_rows = len(read_jsonl(spans.span_path))
            profiler_events = profiler.as_dict()["total_events"]

    best = {name: min(times) for name, times in seconds.items()}
    off = min(best["off_a"], best["off_b"])
    entry = {
        "scenario": SCENARIO,
        "duration": duration,
        "repeats": repeats,
        "off_seconds": off,
        # A/A ratio of the two interleaved off runs: the measured cost of
        # leaving the hooks compiled in with both layers off (noise floor).
        "both_off_overhead": max(best["off_a"], best["off_b"]) / off if off else 0.0,
        "spans_seconds": best["spans"],
        "spans_overhead": best["spans"] / off if off else 0.0,
        "span_rows": span_rows,
        "profiler_seconds": best["profiler"],
        "profiler_overhead": best["profiler"] / off if off else 0.0,
        "profiler_events": profiler_events,
    }
    if entry["both_off_overhead"] >= OFF_OVERHEAD_LIMIT:
        raise RuntimeError(
            f"both-layers-off overhead {entry['both_off_overhead']:.3f} exceeds "
            f"the {OFF_OVERHEAD_LIMIT:.2f} limit"
        )
    return entry


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Span-tracing overhead report")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced pass for CI (short run, 1 repeat); writes BENCH_spans.json "
        "to the working directory instead of appending to the history",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        entry = measure(duration=3.0, repeats=1)
        Path("BENCH_spans.json").write_text(
            json.dumps([entry], indent=2) + "\n", encoding="utf-8"
        )
    else:
        entry = measure(duration=10.0, repeats=3)
        history: list[dict] = []
        if OUTPUT_PATH.exists():
            history = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
        history.append(entry)
        OUTPUT_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
        print(f"appended entry #{len(history)} to {OUTPUT_PATH}")
    print(
        f"off: {entry['off_seconds']:.2f}s wall for {entry['duration']:g}s virtual "
        f"(A/A noise floor x{entry['both_off_overhead']:.3f}, limit "
        f"{OFF_OVERHEAD_LIMIT:.2f})"
    )
    print(
        f"spans on: x{entry['spans_overhead']:.2f} wall "
        f"({entry['span_rows']} span rows)"
    )
    print(
        f"profiler on: x{entry['profiler_overhead']:.2f} wall "
        f"({entry['profiler_events']} events attributed)"
    )


if __name__ == "__main__":
    main()
