"""Fig. 8 — per-server throughput on the geo-distributed (AWS-like) testbed.

Paper shape to reproduce: DL > DL-Coupled > HB-Link > HB in mean throughput;
DispersedLedger's per-server throughput varies with each city's own
capacity, while HoneyBadger's servers are pinned to a common (straggler-
gated) rate.
"""

from conftest import bench_duration, fmt_mbps, report

from repro.experiments.geo import run_geo_throughput


def test_fig08_geo_throughput(benchmark):
    duration = bench_duration()

    def run():
        return run_geo_throughput(
            duration=duration,
            protocols=("dl", "dl-coupled", "hb-link", "hb"),
            max_block_size=2_000_000,
        )

    geo = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["", f"=== Fig. 8: geo-distributed throughput ({duration:.0f}s virtual) ==="]
    header = f"{'city':<14}" + "".join(f"{p:>14}" for p in geo.results)
    lines.append(header)
    for row in geo.throughput_table():
        lines.append(
            f"{row['city']:<14}"
            + "".join(f"{fmt_mbps(row[p]):>14}" for p in geo.results)
        )
    means = geo.mean_throughputs()
    lines.append(f"{'MEAN':<14}" + "".join(f"{fmt_mbps(means[p]):>14}" for p in geo.results))
    lines.append(
        "improvements: DL/HB %+.0f%% (paper +105%%), HB-Link/HB %+.0f%% (paper +45%%), "
        "DL/HB-Link %+.0f%% (paper +41%%)"
        % (
            100 * geo.improvement_over("dl", "hb"),
            100 * geo.improvement_over("hb-link", "hb"),
            100 * geo.improvement_over("dl", "hb-link"),
        )
    )
    report(*lines)

    assert geo.results["dl"].mean_throughput > geo.results["hb"].mean_throughput
    assert geo.results["hb-link"].mean_throughput >= 0.95 * geo.results["hb"].mean_throughput
    # DL decouples: per-node spread well above HB's (which moves in lockstep).
    dl = geo.results["dl"]
    hb = geo.results["hb"]
    assert (dl.max_throughput - dl.min_throughput) > (hb.max_throughput - hb.min_throughput)
    benchmark.extra_info["mean_throughput"] = {p: means[p] for p in means}
