"""Sim-core throughput report: event loop, pipes, and full-scenario events/s.

Times the discrete-event hot paths with plain ``time.perf_counter`` loops and
appends to ``benchmarks/BENCH_sim_core.json`` so the sim-core perf trajectory
is tracked across PRs alongside the coding substrate
(``BENCH_substrates.json``) and the scenario engine
(``BENCH_scenarios.json``).  Run standalone:

    PYTHONPATH=src python benchmarks/bench_sim_core.py
    PYTHONPATH=src python benchmarks/bench_sim_core.py --smoke   # CI quick pass

Three workloads, mirroring where scenario time actually goes:

* ``pure_timer`` — self-rescheduling timer chains; isolates the scheduler
  (heap churn, event allocation).
* ``pipe_saturation`` — a 4-node constant-bandwidth WAN flooded with queued
  messages; isolates the pipe serve/complete path plus the network's
  per-message bookkeeping.
* ``full_scenario`` — one saturating-workload DispersedLedger run (the
  ``bench-sweep`` point of ``bench_scenarios_report.py``); the end-to-end
  number.

To make speedups robust against machine-to-machine variation, the script
embeds a faithful copy of the *seed* sim core (PR 0-2: ``(when, seq,
closure)`` heap tuples, per-message ``complete()`` closures, synchronous
``Pipe.submit``) and measures it in the same process, interleaved sample by
sample with the current implementation.
"""

from __future__ import annotations

import argparse
import heapq
import itertools
import json
import statistics
import time
from pathlib import Path
from typing import Callable

from repro.core.config import NodeConfig
from repro.experiments.runner import WorkloadSpec, run_experiment
from repro.sim.bandwidth import BandwidthTrace, ConstantBandwidth
from repro.sim.events import Simulator
from repro.sim.messages import Message, Priority
from repro.sim.network import LOOPBACK_DELAY, Network, NetworkConfig, TrafficStats

OUTPUT_PATH = Path(__file__).parent / "BENCH_sim_core.json"

MB = 1_000_000.0

#: Workload sizes: full mode is sized for a stable single-core measurement,
#: smoke mode for a sub-minute CI regression check.
SIZES = {
    "full": {"timer_events": 300_000, "pipe_messages": 40_000, "scenario_duration": 10.0},
    "smoke": {"timer_events": 30_000, "pipe_messages": 4_000, "scenario_duration": 2.0},
}


# --------------------------------------------------------------------------
# Seed (PR 0-2) reference implementations, reproduced verbatim in behaviour:
# the simulator stored (when, seq, closure) tuples with no cancellation, and
# the pipe allocated a fresh ``complete()`` closure per transfer, re-sorted
# the priority map on every serve, and started serving synchronously inside
# the submitting caller's frame.
# --------------------------------------------------------------------------


class _SeedSimulator:
    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._processed_events = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed_events

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._queue, (when, next(self._sequence), callback))

    def run(self, until: float | None = None) -> float:
        while self._queue:
            when, _seq, callback = self._queue[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = when
            callback()
            self._processed_events += 1
        if until is not None:
            self._now = max(self._now, until)
        return self._now


class _SeedPipe:
    def __init__(self, sim: _SeedSimulator, trace: BandwidthTrace):
        self._sim = sim
        self._trace = trace
        self._queues: dict[Priority, list] = {priority: [] for priority in Priority}
        self._sequence = itertools.count()
        self._busy = False
        self.bytes_transferred = 0
        self.bytes_aborted = 0
        self.busy_time = 0.0

    def submit(self, size, priority, on_done, rank=0.0, abort=None) -> None:
        entry = (rank, next(self._sequence), size, on_done, abort)
        heapq.heappush(self._queues[priority], entry)
        if not self._busy:
            self._serve_next()

    def _serve_next(self) -> None:
        for priority in sorted(self._queues):
            queue = self._queues[priority]
            while queue:
                _rank, _seq, size, on_done, abort = heapq.heappop(queue)
                if abort is not None and abort():
                    self.bytes_aborted += size
                    continue
                self._start_transfer(size, on_done)
                return
        self._busy = False

    def _start_transfer(self, size, on_done) -> None:
        self._busy = True
        start = self._sim.now
        finish = self._trace.finish_time(start, size)

        def complete() -> None:
            self.bytes_transferred += size
            self.busy_time += finish - start
            on_done()
            self._serve_next()

        self._sim.schedule_at(finish, complete)


class _SeedNetwork:
    def __init__(self, sim: _SeedSimulator, config: NetworkConfig):
        self._sim = sim
        self._config = config
        self._handlers = [None] * config.num_nodes
        self._egress = [_SeedPipe(sim, config.egress_trace(i)) for i in range(config.num_nodes)]
        self._ingress = [_SeedPipe(sim, config.ingress_trace(i)) for i in range(config.num_nodes)]
        self.stats = [TrafficStats() for _ in range(config.num_nodes)]
        self.messages_delivered = 0

    @property
    def num_nodes(self) -> int:
        return self._config.num_nodes

    def attach(self, node_id, handler) -> None:
        self._handlers[node_id] = handler

    def send(self, src, dst, msg, rank=0.0, abort=None) -> None:
        if src == dst:
            self.stats[src].sent[msg.priority] += msg.wire_size
            self._sim.schedule(LOOPBACK_DELAY, lambda: self._deliver(src, dst, msg))
            return

        def after_egress() -> None:
            self.stats[src].sent[msg.priority] += msg.wire_size
            delay = self._config.delay(src, dst)
            self._sim.schedule(delay, lambda: self._enter_ingress(src, dst, msg, rank, abort))

        self._egress[src].submit(msg.wire_size, msg.priority, after_egress, rank, abort)

    def _enter_ingress(self, src, dst, msg, rank, abort=None) -> None:
        handler = self._handlers[dst]
        decline = getattr(handler, "declines_transfer", None)

        def should_abort() -> bool:
            if abort is not None and abort():
                return True
            return decline is not None and decline(msg)

        self._ingress[dst].submit(
            msg.wire_size, msg.priority, lambda: self._deliver(src, dst, msg), rank, should_abort
        )

    def _deliver(self, src, dst, msg) -> None:
        if src != dst:
            self.stats[dst].received[msg.priority] += msg.wire_size
        self.messages_delivered += 1
        handler = self._handlers[dst]
        if handler is not None:
            handler.on_message(src, msg)


# --------------------------------------------------------------------------
# Workloads (parameterised over the sim/network implementation under test).
# --------------------------------------------------------------------------


class _Sink:
    """A protocol automaton that absorbs messages without reacting."""

    def start(self) -> None:
        pass

    def on_message(self, src: int, msg: Message) -> None:
        pass


def run_pure_timer(sim, events_target: int) -> tuple[int, float]:
    """Self-rescheduling timer chains; returns (events, wall seconds)."""
    chains = 64
    per_chain = events_target // chains
    remaining = [per_chain] * chains

    def make_fire(index: int, delay: float) -> Callable[[], None]:
        def fire() -> None:
            remaining[index] -= 1
            if remaining[index] > 0:
                sim.schedule(delay, fire)

        return fire

    for index in range(chains):
        sim.schedule(0.001 * index, make_fire(index, 0.001 * (index % 7 + 1)))
    started = time.perf_counter()
    sim.run()
    return sim.processed_events, time.perf_counter() - started


def run_pipe_saturation(sim, network, num_messages: int) -> tuple[int, float]:
    """Flood a 4-node constant-bandwidth WAN with queued transfers."""
    nodes = network.num_nodes
    for node_id in range(nodes):
        network.attach(node_id, _Sink())
    for i in range(num_messages):
        src = i % nodes
        dst = (src + 1 + (i // nodes) % (nodes - 1)) % nodes
        if i % 3 == 0:
            msg = Message(wire_size=2_000, priority=Priority.RETRIEVAL)
            network.send(src, dst, msg, rank=float(i % 5))
        else:
            msg = Message(wire_size=2_000, priority=Priority.DISPERSAL)
            network.send(src, dst, msg)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    if network.messages_delivered != num_messages:
        raise RuntimeError(
            f"pipe saturation delivered {network.messages_delivered}/{num_messages}"
        )
    return sim.processed_events, elapsed


def _pipe_network_config() -> NetworkConfig:
    nodes = 4
    return NetworkConfig(
        num_nodes=nodes,
        propagation_delay=0.01,
        egress_traces=[ConstantBandwidth(10 * MB)] * nodes,
        ingress_traces=[ConstantBandwidth(10 * MB)] * nodes,
    )


def run_full_scenario(duration: float) -> tuple[int, float]:
    """One saturating DL run: the bench-sweep point of BENCH_scenarios.json."""
    nodes = 6
    config = NetworkConfig(
        num_nodes=nodes,
        propagation_delay=0.05,
        egress_traces=[ConstantBandwidth(4 * MB)] * nodes,
        ingress_traces=[ConstantBandwidth(4 * MB)] * nodes,
    )
    started = time.perf_counter()
    result = run_experiment(
        "dl",
        config,
        duration,
        workload=WorkloadSpec(kind="saturating", target_pending_bytes=2_000_000),
        node_config=NodeConfig(max_block_size=500_000),
        seed=0,
    )
    return result.events_processed, time.perf_counter() - started


# --------------------------------------------------------------------------
# Measurement plumbing.
# --------------------------------------------------------------------------


def _interleaved(current, seed, repeat: int) -> tuple[list, list]:
    """Run both candidates alternately so they see the same machine noise."""
    current_samples, seed_samples = [], []
    for _ in range(repeat):
        current_samples.append(current())
        seed_samples.append(seed())
    return current_samples, seed_samples


def _median_rate(samples: list[tuple[int, float]]) -> tuple[int, float, float]:
    """(events, median seconds, events/s) from (events, seconds) samples."""
    events = samples[0][0]
    seconds = statistics.median(s for _, s in samples)
    return events, seconds, events / seconds


def run_report(mode: str) -> dict:
    sizes = SIZES[mode]
    repeat = 5 if mode == "full" else 1

    timer_now, timer_seed = _interleaved(
        lambda: run_pure_timer(Simulator(), sizes["timer_events"]),
        lambda: run_pure_timer(_SeedSimulator(), sizes["timer_events"]),
        repeat,
    )

    def pipe_current() -> tuple[int, float]:
        sim = Simulator()
        return run_pipe_saturation(
            sim, Network(sim, _pipe_network_config()), sizes["pipe_messages"]
        )

    def pipe_seed() -> tuple[int, float]:
        sim = _SeedSimulator()
        return run_pipe_saturation(
            sim, _SeedNetwork(sim, _pipe_network_config()), sizes["pipe_messages"]
        )

    pipe_now, pipe_seed_samples = _interleaved(pipe_current, pipe_seed, repeat)
    scenario_samples = [run_full_scenario(sizes["scenario_duration"]) for _ in range(1)]

    workloads = {}
    for name, now_samples, seed_samples in (
        ("pure_timer", timer_now, timer_seed),
        ("pipe_saturation", pipe_now, pipe_seed_samples),
    ):
        events, seconds, rate = _median_rate(now_samples)
        seed_events, seed_seconds, seed_rate = _median_rate(seed_samples)
        entry = {
            "events": events,
            "median_seconds": seconds,
            "events_per_second": rate,
            "seed_events": seed_events,
            "seed_median_seconds": seed_seconds,
            "seed_events_per_second": seed_rate,
            "speedup_vs_seed": seed_seconds / seconds,
        }
        if name == "pipe_saturation":
            entry["messages"] = sizes["pipe_messages"]
            entry["messages_per_second"] = sizes["pipe_messages"] / seconds
            entry["seed_messages_per_second"] = sizes["pipe_messages"] / seed_seconds
        workloads[name] = entry

    events, seconds, rate = _median_rate(scenario_samples)
    workloads["full_scenario"] = {
        "events": events,
        "median_seconds": seconds,
        "events_per_second": rate,
        "duration": sizes["scenario_duration"],
    }

    return {"mode": mode, "sizes": sizes, "workloads": workloads}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sizes for CI; does not append to the JSON trajectory",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="append to BENCH_sim_core.json even in --smoke mode",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"

    entry = run_report(mode)
    if not args.smoke or args.write:
        history: list[dict] = []
        if OUTPUT_PATH.exists():
            history = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
        history.append(entry)
        OUTPUT_PATH.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
        print(f"appended entry #{len(history)} to {OUTPUT_PATH}")

    for name, data in entry["workloads"].items():
        line = (
            f"{name:18s} {data['events']:>9,} events in {data['median_seconds']:6.2f}s "
            f"({data['events_per_second']:>10,.0f} events/s)"
        )
        if "speedup_vs_seed" in data:
            line += f"  {data['speedup_vs_seed']:5.2f}x vs seed"
        if "messages_per_second" in data:
            line += f"  {data['messages_per_second']:>8,.0f} msg/s"
        print(line)


if __name__ == "__main__":
    main()
