"""Headline numbers (S1 / S6.2): the paper-vs-reproduction summary table.

Paper claims on the geo-distributed testbed: DispersedLedger achieves ~2x
(+105%) the throughput of HoneyBadger and ~74% lower latency; inter-node
linking alone is worth ~+45% over HoneyBadger; DL-Coupled costs ~12% of
DL's throughput.
"""

from conftest import bench_duration, report

from repro.experiments.geo import run_geo_throughput
from repro.experiments.latency import run_latency_sweep
from repro.experiments.summary import headline_from_results


def test_headline_summary(benchmark):
    geo_duration = bench_duration()
    latency_duration = max(20.0, bench_duration(1.25))

    def run():
        geo = run_geo_throughput(
            duration=geo_duration,
            protocols=("dl", "dl-coupled", "hb-link", "hb"),
            max_block_size=2_000_000,
        )
        latency = run_latency_sweep(
            loads=(1_000_000.0, 4_000_000.0),
            protocols=("dl", "hb"),
            duration=latency_duration,
            warmup=latency_duration * 0.25,
        )
        return headline_from_results(geo, latency)

    headline = benchmark.pedantic(run, rounds=1, iterations=1)

    def pct(value):
        return "n/a" if value is None else f"{100 * value:+.0f}%"

    lines = [
        "",
        "=== Headline summary: paper vs this reproduction ===",
        f"{'metric':<38} {'paper':>10} {'measured':>10}",
        f"{'DL throughput vs HB':<38} {'+105%':>10} {pct(headline.dl_over_hb):>10}",
        f"{'HB-Link throughput vs HB':<38} {'+45%':>10} {pct(headline.linking_over_hb):>10}",
        f"{'DL throughput vs HB-Link':<38} {'+41%':>10} {pct(headline.dl_over_hb_link):>10}",
        f"{'DL-Coupled penalty vs DL':<38} {'-12%':>10} {pct(-headline.coupled_penalty if headline.coupled_penalty is not None else None):>10}",
        f"{'DL latency reduction vs HB':<38} {'-74%':>10} {pct(-headline.latency_reduction if headline.latency_reduction is not None else None):>10}",
        "(see EXPERIMENTS.md for why the throughput ratios are smaller here:",
        " the emulated WAN drops far fewer HoneyBadger blocks than the real internet)",
    ]
    report(*lines)

    assert headline.dl_over_hb > 0.10
    assert headline.dl_over_hb_link >= 0.0
    if headline.latency_reduction is not None:
        assert headline.latency_reduction > -0.25
    benchmark.extra_info["headline"] = {
        key: value for key, value in headline.as_dict().items() if value is not None
    }
