"""Fig. 2 — per-node communication cost of AVID-M vs AVID-FP during dispersal.

Paper shape to reproduce: AVID-M stays within a small factor of the
``1/(N-2f)`` lower bound even at N = 128, while AVID-FP's cross-checksum
overhead grows quadratically and exceeds the size of the full block at
N ≈ 40 for 100 KB blocks (and ≈ 120 for 1 MB blocks).
"""

from conftest import report

from repro.experiments.fig02 import crossover_n, measure_avid_m_dispersal_cost, vid_cost_curve


def test_fig02_vid_dispersal_cost(benchmark):
    def run():
        rows = vid_cost_curve(
            n_values=(4, 8, 16, 32, 64, 100, 128), block_sizes=(100_000, 1_000_000)
        )
        measured = measure_avid_m_dispersal_cost(n=16, block_size=100_000)
        return rows, measured

    rows, measured = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "",
        "=== Fig. 2: per-node dispersal cost, normalised by block size ===",
        f"{'N':>4} {'block':>9} {'AVID-M':>9} {'AVID-FP':>9} {'AVID':>9} {'bound':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row.n:>4} {row.block_size:>9} {row.avid_m:>9.3f} {row.avid_fp:>9.3f} "
            f"{row.avid:>9.3f} {row.lower_bound:>9.3f}"
        )
    lines.append(
        f"measured AVID-M at N=16, 100 KB: {measured:.3f}x block size "
        "(message-level run, validates the model)"
    )
    lines.append(
        f"AVID-FP exceeds full-block download at N={crossover_n(100_000)} for 100 KB blocks "
        f"and N={crossover_n(1_000_000)} for 1 MB blocks (paper: ~40 and ~120)"
    )
    report(*lines)

    by_key = {(row.n, row.block_size): row for row in rows}
    assert by_key[(128, 1_000_000)].avid_m < 0.1
    assert by_key[(128, 100_000)].avid_fp > 1.0
    benchmark.extra_info["measured_avid_m_n16_100kb"] = measured
