"""Fig. 16 (Appendix A.3) — an example temporal-variation bandwidth trace.

Regenerates the kind of Gauss-Markov sample path (b = 10 MB/s, sigma = 5
MB/s, alpha = 0.98, 1 s steps) used by the temporal-variation experiment,
lifts it into the measured-trace model (:mod:`repro.trace`) and checks the
subsystem's time-weighted statistics match the declared process parameters
— the same pipeline a real recorded trace goes through before replay.
"""

from conftest import report

from repro.trace import MeasuredTrace
from repro.workload.traces import MB, GaussMarkovProcess


def test_fig16_example_bandwidth_trace(benchmark):
    def run():
        process = GaussMarkovProcess(mean=10 * MB, sigma=5 * MB, alpha=0.98, seed=16)
        path = process.sample_path(duration=300.0, step=1.0)
        return MeasuredTrace.from_node_rates(
            "fig16-gauss-markov", {0: [(t, rate, rate) for t, rate in path]}
        )

    trace = benchmark.pedantic(run, rounds=1, iterations=1)

    stats = trace.stats()[0]
    resampled = trace.resampled(1.0).nodes[0].points
    rates = [down for _, _, down in resampled]
    jumps = [abs(b - a) for a, b in zip(rates, rates[1:])]

    lines = ["", "=== Fig. 16: example Gauss-Markov bandwidth trace (300 s) ==="]
    lines.append(
        f"mean {stats['down_mean']/1e6:.1f} MB/s, std {stats['down_std']/1e6:.1f} MB/s, "
        f"min {stats['down_min']/1e6:.1f}, max {stats['down_max']/1e6:.1f}, "
        f"mean 1s step {sum(jumps)/len(jumps)/1e6:.2f} MB/s"
    )
    sparkline = "".join(
        " .:-=+*#%@"[min(9, int(rate / (2.5 * MB)))] for rate in rates[:120]
    )
    lines.append(f"first 120 s: [{sparkline}]")
    report(*lines)

    assert trace.num_nodes == 1
    assert len(trace.nodes[0].points) == 300
    assert 5 * MB < stats["down_mean"] < 15 * MB
    # Strong temporal correlation: consecutive samples move far less than sigma.
    assert sum(jumps) / len(jumps) < 2.5 * MB
