"""Fig. 16 (Appendix A.3) — an example temporal-variation bandwidth trace.

Regenerates the kind of Gauss-Markov sample path (b = 10 MB/s, sigma = 5
MB/s, alpha = 0.98, 1 s steps) used by the temporal-variation experiment and
checks its statistics match the declared process parameters.
"""

from conftest import report

from repro.workload.traces import MB, GaussMarkovProcess


def test_fig16_example_bandwidth_trace(benchmark):
    def run():
        process = GaussMarkovProcess(mean=10 * MB, sigma=5 * MB, alpha=0.98, seed=16)
        return process.sample_path(duration=300.0, step=1.0)

    path = benchmark.pedantic(run, rounds=1, iterations=1)

    rates = [rate for _, rate in path]
    mean = sum(rates) / len(rates)
    variance = sum((r - mean) ** 2 for r in rates) / len(rates)
    jumps = [abs(b - a) for a, b in zip(rates, rates[1:])]

    lines = ["", "=== Fig. 16: example Gauss-Markov bandwidth trace (300 s) ==="]
    lines.append(
        f"mean {mean/1e6:.1f} MB/s, std {variance ** 0.5 / 1e6:.1f} MB/s, "
        f"min {min(rates)/1e6:.1f}, max {max(rates)/1e6:.1f}, "
        f"mean 1s step {sum(jumps)/len(jumps)/1e6:.2f} MB/s"
    )
    sparkline = "".join(
        " .:-=+*#%@"[min(9, int(rate / (2.5 * MB)))] for _, rate in path[:120]
    )
    lines.append(f"first 120 s: [{sparkline}]")
    report(*lines)

    assert 5 * MB < mean < 15 * MB
    assert len(path) == 300
    # Strong temporal correlation: consecutive samples move far less than sigma.
    assert sum(jumps) / len(jumps) < 2.5 * MB
