"""Fig. 13 — fraction of traffic spent on block dispersal, vs scale and block size.

Paper shape to reproduce: the dispersal fraction falls as the cluster grows
(each node only stores a 1/(N-2f) slice of every block) and falls as blocks
get bigger (the fixed VID/BA cost is amortised).  The lower this fraction,
the easier it is for a slow node to keep participating in dispersal — the
design goal of DispersedLedger.
"""

from conftest import bench_duration, report

from repro.experiments.scalability import model_sweep, simulate_point


def test_fig13_dispersal_traffic_fraction(benchmark):
    duration = bench_duration()

    def run():
        points = model_sweep(cluster_sizes=(16, 32, 64, 128), block_sizes=(500_000, 1_000_000))
        simulated = simulate_point(n=16, block_size=500_000, duration=duration)
        return points, simulated

    points, simulated = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["", "=== Fig. 13: dispersal traffic fraction (cost model; N=16 simulated) ==="]
    lines.append(f"{'N':>5} {'block':>10} {'dispersal fraction':>20}")
    for point in points:
        lines.append(f"{point.n:>5} {point.block_size:>10} {point.dispersal_fraction:>19.1%}")
    lines.append(
        f"simulated at N=16, 500 KB: {simulated.dispersal_fraction:.1%} "
        "(message-level run, includes retrieval cancellation effects)"
    )
    report(*lines)

    by_key = {(p.n, p.block_size): p for p in points}
    for block in (500_000, 1_000_000):
        assert by_key[(64, block)].dispersal_fraction < by_key[(16, block)].dispersal_fraction
        assert by_key[(128, block)].dispersal_fraction < 0.66 * by_key[(16, block)].dispersal_fraction
    for n in (16, 32, 64, 128):
        assert (
            by_key[(n, 1_000_000)].dispersal_fraction
            < by_key[(n, 500_000)].dispersal_fraction
        )
    assert 0.0 < simulated.dispersal_fraction < 0.5
