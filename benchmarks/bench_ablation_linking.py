"""Ablation — what inter-node linking and retrieval decoupling each contribute.

DESIGN.md calls out two design choices behind DispersedLedger's gains:
(i) decoupling block retrieval from agreement and (ii) the inter-node
linking rule that commits every correctly dispersed block.  This ablation
runs the four combinations on one mid-sized controlled network:

* ``hb``        — neither (lockstep, no linking)
* ``hb-link``   — linking only
* ``dl-nolink`` — decoupling only (DispersedLedger with linking disabled)
* ``dl``        — both (the full protocol)
"""

from conftest import bench_duration, fmt_mbps, report

from repro.core.config import NodeConfig
from repro.experiments.engine import run_scenario
from repro.experiments.runner import WorkloadSpec
from repro.experiments.scenario import (
    BandwidthSpec,
    ScenarioSpec,
    TopologySpec,
    apply_overrides,
)
from repro.workload.traces import MB


def test_ablation_linking_and_decoupling(benchmark):
    duration = bench_duration()
    num_nodes = 10
    base = ScenarioSpec(
        name="ablation-linking",
        topology=TopologySpec(kind="uniform", num_nodes=num_nodes, delay=0.1),
        bandwidth=BandwidthSpec(kind="spatial", rate=8 * MB, step=1.0 * MB),
        workload=WorkloadSpec(kind="saturating"),
        node=NodeConfig(max_block_size=1_000_000),
        duration=duration,
        warmup_fraction=0.0,
    )
    variants = {
        "hb": {"protocol": "hb"},
        "hb-link": {"protocol": "hb-link"},
        "dl-nolink": {"protocol": "dl", "node.linking": False},
        "dl": {"protocol": "dl", "node.linking": True},
    }

    def run():
        return {
            label: run_scenario(apply_overrides(base, overrides)).result
            for label, overrides in variants.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["", f"=== Ablation: linking x decoupling ({num_nodes} nodes, {duration:.0f}s virtual) ==="]
    lines.append(f"{'variant':>10} {'mean tput':>12} {'min tput':>12} {'max tput':>12}")
    for label, result in results.items():
        lines.append(
            f"{label:>10} {fmt_mbps(result.mean_throughput):>12} "
            f"{fmt_mbps(result.min_throughput):>12} {fmt_mbps(result.max_throughput):>12}"
        )
    report(*lines)

    # The full protocol is at least as good as either single ingredient, and
    # strictly better than plain HoneyBadger.
    assert results["dl"].mean_throughput > results["hb"].mean_throughput
    assert results["dl"].mean_throughput >= 0.95 * results["dl-nolink"].mean_throughput
    assert results["dl"].mean_throughput >= 0.95 * results["hb-link"].mean_throughput
