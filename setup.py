from setuptools import find_packages, setup

setup(
    name="repro-dispersedledger",
    version="1.0.0",
    description="Reproduction of DispersedLedger (NSDI 2022): high-throughput "
    "Byzantine consensus on variable bandwidth networks",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
